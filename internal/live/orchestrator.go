package live

// Orchestrated multi-process deployments: the parent half of proc.go.
// RunOrchestrator boots one OS process per node slot over the TCP
// transport, acts as the physical plant (first actuation command to
// arrive per (sink, period) wins), injects faults against real processes
// — the in-process behavior catalog via the victim's spec, plus
// process-level faults no simulator can express: SIGKILL (with optional
// supervised restart), SIGSTOP/SIGCONT stalls, and userspace partitions —
// and judges recovery against the strategy's provable bound R.

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"btr/internal/cliflag"
	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// ProcFaultKinds lists every fault an orchestrated deployment can
// inject: the in-process behavior catalog (self-injected by the victim
// process) plus the process-level faults only a real deployment has.
var ProcFaultKinds = []string{
	"corrupt-all", "corrupt-sink", "crash", "omit", "flood", "none",
	"kill", "kill-restart", "stop", "partition",
}

// OrchestratorConfig describes one orchestrated multi-process run.
type OrchestratorConfig struct {
	// Exe is the node-process binary (re-executed with BTR_PROC_SPEC);
	// empty means the current executable.
	Exe string

	Topo    string // TopoKinds
	Nodes   int
	F       int
	Seed    uint64
	Period  sim.Time
	Margin  sim.Time
	Horizon uint64

	Fault   string // ProcFaultKinds
	FaultAt uint64 // injection period; must satisfy FaultAt+HealAfter < Horizon

	// HealAfter is how many periods after the fault the orchestrator
	// repairs it: respawn for kill-restart, SIGCONT for stop, heal for
	// partition. 0 means the default of 3.
	HealAfter uint64

	Verbose bool
	// Log receives orchestration progress lines (nil = discard).
	Log io.Writer
}

// ProcResult is an orchestrated run's full outcome.
type ProcResult struct {
	// Report is the plant-judged recovery report; its FaultTimes,
	// BadIntervals, Recoveries, and bound methods work exactly as for an
	// in-process Deployment.
	Report *Report
	// Victim is the node the fault targeted (hosts the first-actuating
	// sink replica, like single-process btrlive).
	Victim   network.NodeID
	Injected bool
	// ReconnectChecked is true for fault kinds whose repair must be
	// visible at the transport (kill-restart, partition); Reconnected
	// then reports whether every peer adjacent to the victim both
	// re-established the link (Reconnects >= 1) and held it at horizon.
	ReconnectChecked bool
	Reconnected      bool
	// Dones maps node ID to its final done event (absent for a process
	// that was killed and not restarted); Exits maps node ID to its exit
	// error string ("" = clean).
	Dones map[int]ProcEvent
	Exits map[int]string
}

// plantAct is the plant's accepted command for one (sink, period).
type plantAct struct {
	value   string   // hex
	arrival sim.Time // orchestrator clock, microseconds since "go"
}

// procMsg is one child event or exit on the orchestrator's merged stream.
type procMsg struct {
	node int
	ev   *ProcEvent // nil for process exit
	err  error      // exit status (exit messages only)
	at   time.Time
}

// nodeProc is one spawned node process.
type nodeProc struct {
	id  int
	cmd *exec.Cmd
	in  io.WriteCloser
}

func (p *nodeProc) send(line string) {
	if p.in != nil {
		fmt.Fprintln(p.in, line)
	}
}

func (p *nodeProc) signal(sig syscall.Signal) {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Signal(sig)
	}
}

// spawnNodeProc starts exe as the node described by spec and streams its
// stdout events (and, last, its exit) into events.
func spawnNodeProc(exe string, spec ProcSpec, verbose bool, events chan<- procMsg) (*nodeProc, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), ProcSpecEnv+"="+string(raw))
	if verbose {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &nodeProc{id: spec.Node, cmd: cmd, in: stdin}
	go func() {
		dec := json.NewDecoder(stdout)
		for {
			var ev ProcEvent
			if err := dec.Decode(&ev); err != nil {
				break
			}
			events <- procMsg{node: spec.Node, ev: &ev, at: time.Now()}
		}
		events <- procMsg{node: spec.Node, err: cmd.Wait(), at: time.Now()}
	}()
	return p, nil
}

// RunOrchestrator runs one orchestrated multi-process deployment end to
// end and returns the plant-judged result. The run is bounded by a hard
// timeout (horizon plus a generous grace); on breach every child is
// killed and an error returned.
func RunOrchestrator(cfg OrchestratorConfig) (*ProcResult, error) {
	if err := cliflag.OneOf("fault", cfg.Fault, ProcFaultKinds); err != nil {
		return nil, err
	}
	topo, err := ProcTopology(cfg.Topo, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	if cfg.Period <= 0 || cfg.Horizon == 0 {
		return nil, fmt.Errorf("live: period and horizon must be positive")
	}
	if cfg.HealAfter == 0 {
		cfg.HealAfter = 3
	}
	injected := cfg.Fault != "none"
	if injected && cfg.FaultAt+cfg.HealAfter >= cfg.Horizon {
		return nil, fmt.Errorf("live: fault at period %d with heal-after %d does not fit horizon %d",
			cfg.FaultAt, cfg.HealAfter, cfg.Horizon)
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	period := cfg.Period
	workload := DefaultWorkload(period)
	opts := plan.DefaultOptions(cfg.F, 100*period)
	opts.WatchdogMargin = cfg.Margin
	strategy, err := plan.Build(workload, topo, opts)
	if err != nil {
		return nil, fmt.Errorf("live: planning failed: %w", err)
	}
	victim := VictimOf(strategy)
	oracle := hashOracle(workload, evidence.SourceValue)
	exe := cfg.Exe
	if exe == "" {
		if exe, err = os.Executable(); err != nil {
			return nil, err
		}
	}

	// The behavior catalog travels in the victim's spec; process-level
	// faults are driven from here.
	catalogFault := ""
	procFault := ""
	switch cfg.Fault {
	case "kill", "kill-restart", "stop", "partition":
		procFault = cfg.Fault
	case "none":
	default:
		catalogFault = cfg.Fault
	}

	baseSpec := func(i int) ProcSpec {
		s := ProcSpec{
			Node: i, Topo: cfg.Topo, Nodes: cfg.Nodes, F: cfg.F, Seed: cfg.Seed,
			PeriodUS: int64(period), MarginUS: int64(cfg.Margin), Horizon: cfg.Horizon,
			Verbose: cfg.Verbose,
		}
		if catalogFault != "" && i == int(victim) {
			s.Fault, s.FaultAt = catalogFault, cfg.FaultAt
		}
		return s
	}

	events := make(chan procMsg, 1024)
	procs := map[int]*nodeProc{}
	killAll := func() {
		for _, p := range procs {
			if p.cmd.Process != nil {
				_ = p.cmd.Process.Kill()
			}
		}
	}
	defer killAll()

	for i := 0; i < topo.N; i++ {
		p, err := spawnNodeProc(exe, baseSpec(i), cfg.Verbose, events)
		if err != nil {
			return nil, fmt.Errorf("live: spawn node %d: %w", i, err)
		}
		procs[i] = p
	}
	fmt.Fprintf(logw, "orchestrator: %d node processes spawned (victim %d, fault %s at period %d)\n",
		topo.N, victim, cfg.Fault, cfg.FaultAt)

	perDur := time.Duration(period) * time.Microsecond
	hardTimeout := time.After(time.Duration(cfg.Horizon+2)*perDur + 60*time.Second)

	// Barrier: collect every listener address, then release all processes
	// at once so their logical clocks agree to within pipe latency.
	addrs := make([]string, topo.N)
	for ready := 0; ready < topo.N; {
		select {
		case m := <-events:
			switch {
			case m.ev != nil && m.ev.Ev == "ready":
				addrs[m.node] = m.ev.Addr
				ready++
			case m.ev == nil:
				return nil, fmt.Errorf("live: node %d exited before ready: %v", m.node, m.err)
			}
		case <-hardTimeout:
			return nil, fmt.Errorf("live: timed out waiting for node readiness")
		}
	}
	peersLine := "peers " + strings.Join(addrs, " ")
	for _, p := range procs {
		p.send(peersLine)
	}
	// Second barrier: wait for every process to finish building its system
	// (key generation, planning, dialing) so the release pins all logical
	// clocks to the same instant — construction lag must not eat into the
	// judged periods.
	for up := 0; up < topo.N; {
		select {
		case m := <-events:
			switch {
			case m.ev != nil && m.ev.Ev == "up":
				up++
			case m.ev == nil:
				return nil, fmt.Errorf("live: node %d exited before up: %v", m.node, m.err)
			}
		case <-hardTimeout:
			return nil, fmt.Errorf("live: timed out waiting for node construction")
		}
	}
	goTime := time.Now()
	for _, p := range procs {
		p.send("go")
	}
	fmt.Fprintf(logw, "orchestrator: cluster released (%s)\n", strings.Join(addrs, " "))

	var faultCh, healCh <-chan time.Time
	if procFault != "" {
		faultCh = time.After(time.Until(goTime.Add(time.Duration(cfg.FaultAt) * perDur)))
	}

	plant := map[string]plantAct{}
	res := &ProcResult{
		Victim: victim, Injected: injected,
		Dones: map[int]ProcEvent{}, Exits: map[int]string{},
	}
	exits := 0
	spawned := topo.N
	for exits < spawned {
		select {
		case m := <-events:
			switch {
			case m.ev == nil:
				exits++
				// First write wins: a restarted incarnation must not mask
				// how its predecessor died (e.g. "signal: killed").
				if _, dup := res.Exits[m.node]; !dup {
					if m.err != nil {
						res.Exits[m.node] = m.err.Error()
					} else {
						res.Exits[m.node] = ""
					}
				}
			case m.ev.Ev == "act":
				key := m.ev.Sink + "|" + fmt.Sprint(m.ev.Period)
				if _, taken := plant[key]; !taken {
					a := plantAct{
						value:   m.ev.Value,
						arrival: sim.Time(m.at.Sub(goTime) / time.Microsecond),
					}
					plant[key] = a
					fmt.Fprintf(logw, "plant: %s period %d from node %d at %v (logical %v)\n",
						m.ev.Sink, m.ev.Period, m.node, a.arrival, sim.Time(m.ev.AtUS))
				}
			case m.ev.Ev == "done":
				res.Dones[m.node] = *m.ev
				fmt.Fprintf(logw, "done node %d: acts=%d evidence=%d switches=%d connected=%d links=%+v\n",
					m.node, m.ev.Acts, m.ev.Evidence, m.ev.Switches, m.ev.Connected, m.ev.Links)
			case m.ev.Ev == "up":
				// Only a restarted process reports up mid-run; it rebinds
				// its old port, rebuilds, and needs only the release.
				procs[m.node].send("go")
			}
		case <-faultCh:
			faultCh = nil
			v := procs[int(victim)]
			switch procFault {
			case "kill", "kill-restart":
				fmt.Fprintf(logw, "orchestrator: SIGKILL node %d\n", victim)
				v.signal(syscall.SIGKILL)
				if procFault == "kill-restart" {
					healCh = time.After(time.Duration(cfg.HealAfter) * perDur)
				}
			case "stop":
				fmt.Fprintf(logw, "orchestrator: SIGSTOP node %d\n", victim)
				v.signal(syscall.SIGSTOP)
				healCh = time.After(time.Duration(cfg.HealAfter) * perDur)
			case "partition":
				fmt.Fprintf(logw, "orchestrator: partition node %d\n", victim)
				v.send("part")
				healCh = time.After(time.Duration(cfg.HealAfter) * perDur)
			}
		case <-healCh:
			healCh = nil
			switch procFault {
			case "kill-restart":
				// Rejoin in standby: the transport reconnects (that is
				// what the verdict asserts); the executive stays out of
				// the schedule the cluster has already failed over to.
				restart := baseSpec(int(victim))
				restart.Addrs = append([]string(nil), addrs...)
				restart.StartPeriod = cfg.FaultAt + cfg.HealAfter
				restart.Standby = true
				restart.Fault = ""
				p, err := spawnNodeProc(exe, restart, cfg.Verbose, events)
				if err != nil {
					fmt.Fprintf(logw, "orchestrator: restart failed: %v\n", err)
					break
				}
				procs[int(victim)] = p
				spawned++
				fmt.Fprintf(logw, "orchestrator: node %d restarted in standby at period %d\n",
					victim, restart.StartPeriod)
			case "stop":
				fmt.Fprintf(logw, "orchestrator: SIGCONT node %d\n", victim)
				procs[int(victim)].signal(syscall.SIGCONT)
			case "partition":
				fmt.Fprintf(logw, "orchestrator: heal node %d\n", victim)
				procs[int(victim)].send("heal")
			}
		case <-hardTimeout:
			killAll()
			return nil, fmt.Errorf("live: hard timeout — killed %d node processes", len(procs))
		}
	}

	// Judge the merged actuation stream as the plant: a command counts
	// for its period iff it arrived by the sink deadline (plus a pipe-
	// jitter allowance — commands cross a pipe that in-process monitors
	// do not pay) and carried the oracle value.
	rep := &Report{
		Horizon: sim.Time(cfg.Horizon) * period, Period: period,
		RNeeded:         strategy.RNeeded,
		PerSink:         map[flow.TaskID]*metrics.Timeline{},
		EvidenceByKind:  map[evidence.Kind]int{},
		FirstEvidenceAt: sim.Never,
	}
	for _, sk := range workload.Sinks() {
		rep.PerSink[sk] = metrics.NewTimeline(0, true)
	}
	slack := cfg.Margin
	for p := uint64(0); p < cfg.Horizon; p++ {
		for _, sk := range workload.Sinks() {
			deadline := sim.Time(p)*period + workload.Tasks[sk].Deadline
			a, present := plant[string(sk)+"|"+fmt.Sprint(p)]
			ok := false
			switch {
			case !present || a.arrival > deadline+slack:
				rep.MissedPeriods++
			case a.value != hex.EncodeToString(oracle(sk, p)):
				rep.WrongValues++
			default:
				ok = true
			}
			rep.PerSink[sk].Set(deadline, ok)
		}
	}
	if injected {
		rep.FaultTimes = []sim.Time{sim.Time(cfg.FaultAt) * period}
	}
	for _, d := range res.Dones {
		rep.Actuations += d.Acts
	}
	res.Report = rep

	// Transport-level verdict: after a kill-restart or partition heal,
	// every peer adjacent to the victim must have re-established the link
	// and held it through the horizon.
	if procFault == "kill-restart" || procFault == "partition" {
		res.ReconnectChecked = true
		res.Reconnected = true
		for _, peer := range topo.Neighbors(victim) {
			d, ok := res.Dones[int(peer)]
			if !ok {
				res.Reconnected = false
				continue
			}
			found := false
			for _, l := range d.Links {
				if l.Peer == int(victim) {
					found = l.Reconnects >= 1 && l.Connected
				}
			}
			if !found {
				res.Reconnected = false
			}
		}
	}
	return res, nil
}
