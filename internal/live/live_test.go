package live

import (
	"runtime"
	"testing"
	"time"

	"btr/internal/adversary"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// liveConfig is the standard small live deployment: a 3-task chain on a
// 6-node full mesh. The generous 300ms period and 100ms watchdog margin
// keep the test robust under the race detector on slow 1-core CI hosts,
// where a single ed25519 operation costs ~1ms and the shared executor can
// lag the wall clock by tens of milliseconds at period start — recovery
// correctness does not depend on the period, and the bound R scales with
// it. The evidence rate limit is lowered for the same reason: it bounds
// the per-period crypto backlog a flood can enqueue on the executor.
func liveConfig(horizon uint64) Config {
	opts := plan.DefaultOptions(1, 5*sim.Second)
	opts.WatchdogMargin = 100 * sim.Millisecond
	return Config{
		Seed:              1,
		Workload:          flow.Chain(3, 300*sim.Millisecond, sim.Millisecond, 64, flow.CritA),
		Topology:          network.FullMesh(6, 20_000_000, 50*sim.Microsecond),
		PlanOpts:          opts,
		Horizon:           horizon,
		EvidenceRateLimit: 6,
	}
}

func TestLiveDeploymentFaultFreeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock soak in -short mode")
	}
	before := runtime.NumGoroutine()
	d, err := New(liveConfig(6))
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	rep := d.Run()
	if rep.MissedPeriods != 0 || rep.WrongValues != 0 {
		t.Errorf("fault-free live run not clean: missed=%d wrong=%d", rep.MissedPeriods, rep.WrongValues)
	}
	if rep.Actuations == 0 {
		t.Error("no actuations observed")
	}
	if got := rep.MaxRecovery(); got != 0 {
		t.Errorf("fault-free run reported recovery %v", got)
	}
	waitNoLeak(t, before)
}

func TestLiveDeploymentRecoversWithinBoundOnWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock soak in -short mode")
	}
	before := runtime.NumGoroutine()
	d, err := New(liveConfig(12))
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	period := d.Cfg.Workload.Period
	// Corrupt every output of the first-actuating sink host: the
	// externally visible commission fault (the E1/C2 victim choice).
	victim := FirstSinkNode(d)
	adversary.CorruptEverything(victim, 3*period).Install(d)
	rep := d.Run()

	if len(rep.FaultTimes) != 1 {
		t.Fatalf("fault not recorded: %v", rep.FaultTimes)
	}
	if rep.EvidenceTotal() == 0 {
		t.Error("no evidence observed after commission fault")
	}
	if len(rep.SwitchTimes) == 0 {
		t.Error("no mode switch observed")
	}
	max := rep.MaxRecovery()
	if max == 0 {
		// The fault was externally visible by construction; zero recovery
		// would mean the monitor saw nothing.
		t.Error("commission fault on the first-actuating sink host produced no bad output")
	}
	// The system must actually recover: bad output must not extend to the
	// end of the run.
	if bad := rep.BadIntervals(); len(bad) > 0 && bad[len(bad)-1].End >= rep.Horizon {
		t.Errorf("never recovered: bad output extends to the horizon (%v)", bad)
	}
	if raceDetectorEnabled {
		// The race detector slows crypto ~10x, so the absolute wall-clock
		// bound is not meaningful here; the strict check runs in the
		// non-race suite and in the C5 perf rows.
		t.Logf("race build: recovery %v vs bound %v (not asserted)", max, rep.RNeeded)
	} else if !rep.WithinBound() {
		t.Errorf("wall-clock recovery %v exceeded bound R=%v", max, rep.RNeeded)
	}
	waitNoLeak(t, before)
}

func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutine leak after live shutdown: %d before, %d after", before, g)
	}
}
