package live

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"btr/internal/sim"
)

// TestMain lets this test binary double as the node-process binary: the
// orchestrator re-executes os.Executable() with BTR_PROC_SPEC set, and
// MaybeRunNodeProc turns that re-execution into a deployment node
// instead of a second test run.
func TestMain(m *testing.M) {
	MaybeRunNodeProc()
	os.Exit(m.Run())
}

// procPeriod/procMargin are deliberately generous, far beyond C5's: an
// orchestrated run multiplies the executor count by the node count on
// possibly ONE core (CI containers), where the OS scheduler's timeslice
// latency alone can stall a cross-process delivery for tens of
// milliseconds, and the plant judgment additionally crosses pipes. The
// margin must dominate worst-case CFS latency or watchdogs fire on
// healthy links and the cluster mode-flaps before any fault.
const (
	procPeriod = 500 * sim.Millisecond
	procMargin = 200 * sim.Millisecond
)

func orchestrate(t *testing.T, fault string) *ProcResult {
	t.Helper()
	res, err := RunOrchestrator(OrchestratorConfig{
		Topo: "full-mesh", Nodes: 4, F: 1, Seed: 7,
		Period: procPeriod, Margin: procMargin, Horizon: 10,
		Fault: fault, FaultAt: 3, HealAfter: 3,
	})
	if err != nil {
		t.Fatalf("orchestrated %s run failed: %v", fault, err)
	}
	return res
}

// assertWithinBound runs the shared verdict: no bad output before the
// fault, and every measured recovery within the provable bound R.
func assertWithinBound(t *testing.T, res *ProcResult) {
	t.Helper()
	rep := res.Report
	at := rep.FaultTimes[0]
	for _, iv := range rep.BadIntervals() {
		if iv.Start < at {
			t.Errorf("spurious bad output %v before the fault at %v", iv, at)
		}
	}
	if max := rep.MaxRecovery(); max > rep.RNeeded {
		t.Errorf("recovery %v exceeds provable bound R=%v (missed=%d wrong=%d)",
			max, rep.RNeeded, rep.MissedPeriods, rep.WrongValues)
	}
}

// TestOrchestratedCorruptRecoversWithinR is the cross-process analogue
// of C5's headline row: a Byzantine victim corrupting everything it
// sends, detected and excluded by real processes over real sockets
// within the provable bound.
func TestOrchestratedCorruptRecoversWithinR(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process wall-clock run")
	}
	res := orchestrate(t, "corrupt-all")
	assertWithinBound(t, res)
	// Both sink replicas act at the same logical offset, so whether the
	// plant samples the corrupt or the correct command first is a real
	// physical race across processes — WrongValues may legitimately be 0.
	// What must hold: every surviving node detected the corruption and
	// switched away from the victim's mode.
	for n, d := range res.Dones {
		if n != int(res.Victim) && d.Switches == 0 {
			t.Errorf("node %d never switched modes — the corruption was not detected", n)
		}
	}
	for n, e := range res.Exits {
		if e != "" {
			t.Errorf("node %d exited dirty: %s", n, e)
		}
	}
}

// TestOrchestratedKillRestartReconnects is the tentpole's acceptance
// scenario: SIGKILL the victim process mid-run, respawn it, and require
// both bounded recovery and transport-level rejoin (every adjacent
// peer's supervised link redials and holds).
func TestOrchestratedKillRestartReconnects(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process wall-clock run")
	}
	res := orchestrate(t, "kill-restart")
	assertWithinBound(t, res)
	if !res.ReconnectChecked {
		t.Fatal("kill-restart run did not check reconnection")
	}
	if !res.Reconnected {
		t.Errorf("victim link did not re-establish on every peer: dones=%+v", res.Dones)
	}
	if e := res.Exits[int(res.Victim)]; !strings.Contains(e, "killed") {
		t.Errorf("victim's first incarnation should have died by signal, got exit %q", e)
	}
}

// TestOrchestratedStopRecoversWithinR is the SIGSTOP gate: freeze the
// victim process mid-run with SIGSTOP — a fault no in-process simulator
// can express, the process is alive but makes no progress — and require
// that peers detect the stall through the transport's liveness deadline,
// fail over within the provable bound R, and that the resumed victim
// redials every peer after SIGCONT (the stall outlives the liveness
// deadline, so the running peers sever the victim's silent links; the
// peer→victim direction may legitimately ride out the stall on kernel
// buffering, so the victim's own links are the witnesses).
func TestOrchestratedStopRecoversWithinR(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process wall-clock run")
	}
	res := orchestrate(t, "stop")
	assertWithinBound(t, res)
	if !res.ReconnectChecked {
		t.Fatal("stop run did not check reconnection")
	}
	if !res.Reconnected {
		t.Errorf("victim link did not re-establish on every peer after SIGCONT: dones=%+v", res.Dones)
	}
	// SIGCONT resumes the process; it must drain to the horizon and exit
	// clean, not die of the stall.
	if e, ok := res.Exits[int(res.Victim)]; !ok || e != "" {
		t.Errorf("stopped victim should resume and exit clean, got exit %q (present=%v)", e, ok)
	}
}

// TestOrchestratedStormFlagsOverBudget drives two concurrent
// process-level faults — more than f=1 — against a parole-clock
// deployment: SIGKILL+respawn of one victim overlapping a userspace
// partition of another. The classic guarantee is suspended while both
// are active, so the verdict is detect-and-apologize: some node must
// flood a signed over-budget verdict (and reconcile after the storm
// drains), every bad interval must be fault-attributable (confined), and
// both victims' links must re-establish after their independent heals.
func TestOrchestratedStormFlagsOverBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process wall-clock run")
	}
	res, err := RunOrchestrator(OrchestratorConfig{
		Topo: "full-mesh", Nodes: 4, F: 1, Seed: 7,
		Period: procPeriod, Margin: procMargin, Horizon: 16,
		Faults: []FaultSpec{
			{Kind: "kill-restart", Node: -1, FaultAt: 3, HealAfter: 3},
			{Kind: "partition", Node: -1, FaultAt: 5, HealAfter: 3},
		},
		Forgive: 2 * procPeriod,
	})
	if err != nil {
		t.Fatalf("storm run failed: %v", err)
	}
	if len(res.Storm) != 2 {
		t.Fatalf("expected 2 storm verdicts, got %+v", res.Storm)
	}
	if res.Storm[0].Node == res.Storm[1].Node {
		t.Fatalf("storm entries share victim %d", res.Storm[0].Node)
	}
	for _, sv := range res.Storm {
		if !sv.ReconnectChecked {
			t.Errorf("%s on node %d was not reconnect-checked", sv.Kind, sv.Node)
		} else if !sv.Reconnected {
			t.Errorf("%s victim %d did not re-establish on every peer: dones=%+v", sv.Kind, sv.Node, res.Dones)
		}
	}
	if res.OverBudget == 0 {
		t.Errorf("> f storm raised no over-budget verdict (reconciled=%d dones=%+v)", res.Reconciled, res.Dones)
	}
	if res.Reconciled == 0 {
		t.Errorf("storm drained but no node reconciled (over-budget=%d)", res.OverBudget)
	}
	if !res.Confined {
		t.Errorf("bad output outside the attributable window [%v, %v]: %+v",
			res.FirstFaultAt, res.ConfineEnd, res.Report.BadIntervals())
	}
}

// TestRunNodeProcValidatesSpec pins the child-side error paths: they
// must fail loudly before any network activity.
func TestRunNodeProcValidatesSpec(t *testing.T) {
	base := ProcSpec{Node: 0, Topo: "full-mesh", Nodes: 4, F: 1, Seed: 1,
		PeriodUS: int64(procPeriod), MarginUS: int64(procMargin), Horizon: 5}
	for name, mutate := range map[string]func(*ProcSpec){
		"unknown topology":    func(s *ProcSpec) { s.Topo = "mesh" },
		"node out of range":   func(s *ProcSpec) { s.Node = 4 },
		"negative node":       func(s *ProcSpec) { s.Node = -1 },
		"zero period":         func(s *ProcSpec) { s.PeriodUS = 0 },
		"zero horizon":        func(s *ProcSpec) { s.Horizon = 0 },
		"short address slice": func(s *ProcSpec) { s.Addrs = []string{"127.0.0.1:1"} },
		// A non-nil empty vector means dynamic ports exactly like nil: with
		// no peers line on stdin the child must error out waiting for it,
		// not reach NewTCPBus with zero addresses (which panics).
		"empty address slice": func(s *ProcSpec) { s.Addrs = []string{} },
	} {
		spec := base
		mutate(&spec)
		if err := RunNodeProc(spec, strings.NewReader(""), io.Discard); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestOrchestratorValidatesConfig pins the parent-side error paths.
func TestOrchestratorValidatesConfig(t *testing.T) {
	valid := OrchestratorConfig{Topo: "full-mesh", Nodes: 4, F: 1, Seed: 1,
		Period: procPeriod, Margin: procMargin, Horizon: 10, Fault: "kill", FaultAt: 3}
	for name, mutate := range map[string]func(*OrchestratorConfig){
		"unknown fault":       func(c *OrchestratorConfig) { c.Fault = "kil" },
		"unknown topology":    func(c *OrchestratorConfig) { c.Topo = "mesh" },
		"zero period":         func(c *OrchestratorConfig) { c.Period = 0 },
		"fault outside run":   func(c *OrchestratorConfig) { c.FaultAt = 9 },
		"heal beyond horizon": func(c *OrchestratorConfig) { c.HealAfter = 7 },
		"schedule with single fault": func(c *OrchestratorConfig) {
			c.Faults = []FaultSpec{{Kind: "stop", Node: -1, FaultAt: 3}}
		},
		"schedule with catalog kind": func(c *OrchestratorConfig) {
			c.Fault = "none"
			c.Faults = []FaultSpec{{Kind: "corrupt-all", Node: -1, FaultAt: 3}}
		},
		"schedule duplicate victim": func(c *OrchestratorConfig) {
			c.Fault = "none"
			c.Faults = []FaultSpec{
				{Kind: "stop", Node: 1, FaultAt: 3},
				{Kind: "partition", Node: 1, FaultAt: 4},
			}
		},
		"schedule victim out of range": func(c *OrchestratorConfig) {
			c.Fault = "none"
			c.Faults = []FaultSpec{{Kind: "stop", Node: 4, FaultAt: 3}}
		},
		"schedule beyond horizon": func(c *OrchestratorConfig) {
			c.Fault = "none"
			c.Faults = []FaultSpec{{Kind: "partition", Node: -1, FaultAt: 8, HealAfter: 3}}
		},
		"negative clients":         func(c *OrchestratorConfig) { c.Clients = -1 },
		"ops rate without clients": func(c *OrchestratorConfig) { c.OpsRate = 100 },
		"clients need two periods": func(c *OrchestratorConfig) {
			c.Clients = 4
			c.Horizon = 1
			c.Fault = "none"
		},
		"schedule larger than cluster": func(c *OrchestratorConfig) {
			c.Fault = "none"
			c.Faults = []FaultSpec{
				{Kind: "stop", Node: -1, FaultAt: 3}, {Kind: "stop", Node: -1, FaultAt: 3},
				{Kind: "stop", Node: -1, FaultAt: 3}, {Kind: "stop", Node: -1, FaultAt: 3},
				{Kind: "stop", Node: -1, FaultAt: 3},
			}
		},
	} {
		cfg := valid
		mutate(&cfg)
		if _, err := RunOrchestrator(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// writeStubNode writes an executable that impersonates a node process
// but wedges at the given stage: "never-ready" prints nothing at all;
// "never-up" prints a ready line and then hangs; "first-wedged" wedges
// only node 0 and lets the rest report ready. exec replaces the shell
// so the orchestrator's SIGKILL reaps the whole stub.
func writeStubNode(t *testing.T, mode string) string {
	t.Helper()
	var script string
	switch mode {
	case "never-ready":
		script = "#!/bin/sh\nexec sleep 600\n"
	case "never-up":
		script = "#!/bin/sh\necho '{\"ev\":\"ready\",\"addr\":\"127.0.0.1:1\"}'\nexec sleep 600\n"
	case "first-wedged":
		script = "#!/bin/sh\ncase \"$BTR_PROC_SPEC\" in\n" +
			"'{\"node\":0'*) exec sleep 600 ;;\n" +
			"*) echo '{\"ev\":\"ready\",\"addr\":\"127.0.0.1:1\"}'; exec sleep 600 ;;\nesac\n"
	default:
		t.Fatalf("unknown stub mode %q", mode)
	}
	path := filepath.Join(t.TempDir(), "stub-node")
	if err := os.WriteFile(path, []byte(script), 0o755); err != nil {
		t.Fatalf("write stub: %v", err)
	}
	return path
}

// TestOrchestratorBarrierTimeoutKillsStragglers is the pinned regression
// for the barrier-hang bug: a child that wedges before emitting its
// barrier line used to stall RunOrchestrator until the hard timeout
// (horizon grace + 60s). The bounded barrier must return promptly, kill
// the stragglers, and name the nodes that never reported.
func TestOrchestratorBarrierTimeoutKillsStragglers(t *testing.T) {
	for mode, want := range map[string]struct {
		barrier string
		nodes   string
	}{
		"never-ready":  {"ready barrier", "[0 1 2 3]"},
		"never-up":     {"up barrier", "[0 1 2 3]"},
		"first-wedged": {"ready barrier", "[0]"},
	} {
		mode, want := mode, want
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			stub := writeStubNode(t, mode)
			start := time.Now()
			_, err := RunOrchestrator(OrchestratorConfig{
				Exe: stub, Topo: "full-mesh", Nodes: 4, F: 1, Seed: 1,
				Period: procPeriod, Margin: procMargin, Horizon: 10,
				Fault: "none", BarrierTimeout: 2 * time.Second,
			})
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("orchestrator accepted a cluster of wedged stubs")
			}
			if elapsed > 20*time.Second {
				t.Fatalf("barrier breach took %v — the bounded wait did not fire", elapsed)
			}
			if !strings.Contains(err.Error(), want.barrier) {
				t.Errorf("error %q does not name the %s", err, want.barrier)
			}
			if !strings.Contains(err.Error(), want.nodes) {
				t.Errorf("error %q does not name the wedged nodes %s", err, want.nodes)
			}
		})
	}
}

// TestOrchestratedClientLoadMeetsSLO drives the full serving surface:
// client sessions performing quorum reads/writes against the register
// service of an orchestrated cluster THROUGH a kill-restart of one
// replica. With n−f=3 of 4 replicas alive throughout, the client-visible
// story must be: zero errors, and the longest unavailability window
// bounded by the recovery bound R plus scheduling slack.
func TestOrchestratedClientLoadMeetsSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process wall-clock run")
	}
	res, err := RunOrchestrator(OrchestratorConfig{
		Topo: "full-mesh", Nodes: 4, F: 1, Seed: 7,
		Period: procPeriod, Margin: procMargin, Horizon: 10,
		Fault: "kill-restart", FaultAt: 3, HealAfter: 3,
		Clients: 16,
	})
	if err != nil {
		t.Fatalf("orchestrated client-load run failed: %v", err)
	}
	assertWithinBound(t, res)
	slo := res.SLO
	if slo == nil {
		t.Fatal("run with Clients > 0 produced no SLO report")
	}
	if slo.Ops == 0 {
		t.Fatal("client sessions completed no ops")
	}
	if slo.Errors != 0 {
		t.Errorf("client-visible errors through a <= f fault: %s", slo)
	}
	bound := time.Duration(res.Report.RNeeded+2*procPeriod+procMargin) * time.Microsecond
	if slo.MaxUnavail > bound {
		t.Errorf("client-visible unavailability %v exceeds R+slack %v (%s)", slo.MaxUnavail, bound, slo)
	}
}
