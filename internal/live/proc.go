package live

// Multi-process deployments: one OS process per node slot, wired over the
// real-socket TCP transport (network.TCPBus). This file is the node
// (child) side; orchestrator.go is the parent that spawns one node
// process per slot, injects faults against real processes (SIGKILL,
// SIGSTOP, userspace partitions), and judges the merged actuation stream
// as the plant.
//
// A node process is the same binary re-executed with the BTR_PROC_SPEC
// environment variable set: MaybeRunNodeProc, called at the top of main
// (or TestMain), detects the variable and becomes the node instead of the
// CLI. The control protocol is line-oriented and deliberately tiny:
//
//	child -> parent (stdout, one JSON object per line):
//	  {"ev":"ready","node":i,"addr":"127.0.0.1:..."}   listener is up
//	  {"ev":"up","node":i}                             system built; at "go"
//	                                                   the clock pins with
//	                                                   no construction lag
//	  {"ev":"act","node":i,"sink":"c2","period":7,...} one actuation
//	  {"ev":"done","node":i,...}                       horizon reached
//	parent -> child (stdin, plain text lines):
//	  peers <addr0> <addr1> ...   full address vector (when spawned with
//	                              dynamic ports); must precede go
//	  go                          pin t=0 (or t=StartPeriod·period for a
//	                              restarted process) and start executing
//	  part [peer...]              refuse the listed peers (default: all
//	                              neighbors) — a userspace partition
//	  heal                        clear all refusals
//	  quit                        exit now
//
// Every process builds the identical System — same seed, same topology,
// same plan.Build output, same key registry — so plans and signatures
// agree everywhere, but starts only the one slot it hosts
// (runtime.System.StartNodeFrom). Membership epochs are not supported in
// this mode: the epoch operator reaches across node boundaries
// in-process, so specs carry no membership fields (see ROADMAP).

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"btr/internal/adversary"
	"btr/internal/client"
	"btr/internal/cliflag"
	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/runtime"
	"btr/internal/sig"
	"btr/internal/sim"
)

// ProcSpecEnv is the environment variable carrying a JSON-encoded
// ProcSpec; its presence turns the process into a deployment node.
const ProcSpecEnv = "BTR_PROC_SPEC"

// TopoKinds lists the topology families the deployment builders accept.
var TopoKinds = []string{"full-mesh", "dual-bus", "ring", "grid"}

// BuildTopology constructs a deployment topology by family name, with
// the shared live-mode link parameters.
func BuildTopology(kind string, nodes int) (*network.Topology, error) {
	return buildTopologyLinks(kind, nodes, 20_000_000, 50*sim.Microsecond)
}

// ProcTopology constructs the topology multi-process deployments plan
// against: the same families as BuildTopology, but the link propagation
// term models real cross-process delivery on a contended host. A message
// between node processes pays pipe/socket transit plus OS scheduling
// latency — on a busy single-core machine the sender's write, the
// receiver's read, and the receiver's executor dispatch each wait for a
// CFS timeslice, so end-to-end delivery routinely takes tens of
// milliseconds. Planning against microsecond links would place consumer
// slots immediately after producer slots and every first-period record
// would miss its compute instant (the replica then stays silent and its
// consumers accuse a healthy path). The watchdog margin protects
// detection, but only the planned link model protects slot spacing.
func ProcTopology(kind string, nodes int) (*network.Topology, error) {
	return buildTopologyLinks(kind, nodes, 20_000_000, 25*sim.Millisecond)
}

func buildTopologyLinks(kind string, nodes int, bw int64, prop sim.Time) (*network.Topology, error) {
	if err := cliflag.OneOf("topo", kind, TopoKinds); err != nil {
		return nil, err
	}
	switch kind {
	case "full-mesh":
		return network.FullMesh(nodes, bw, prop), nil
	case "dual-bus":
		return network.DualBus(nodes, bw, prop), nil
	case "ring":
		return network.Ring(nodes, bw, prop), nil
	default: // grid
		return network.Grid(3, 3, bw, prop), nil
	}
}

// FaultKinds lists the in-process behavior catalog: faults a node can
// install on itself (single-process btrlive installs them on the victim
// directly; a node process self-injects from its spec).
var FaultKinds = []string{"corrupt-all", "corrupt-sink", "crash", "omit", "flood", "none"}

// BuildAttack maps a catalog name to the adversary script against
// victim/sink at time at. The second result is false for "none".
func BuildAttack(kind string, victim network.NodeID, sink flow.TaskID, at sim.Time) (adversary.Attack, bool, error) {
	if err := cliflag.OneOf("fault", kind, FaultKinds); err != nil {
		return adversary.Attack{}, false, err
	}
	switch kind {
	case "none":
		return adversary.Attack{}, false, nil
	case "corrupt-all":
		return adversary.CorruptEverything(victim, at), true, nil
	case "corrupt-sink":
		return adversary.CorruptTask(victim, sink, at), true, nil
	case "crash":
		return adversary.Crash(victim, at), true, nil
	case "omit":
		return adversary.Omit(victim, sink, at), true, nil
	default: // flood
		return adversary.FloodBogus(victim, 8, at), true, nil
	}
}

// DefaultWorkload is the control workload every live driver runs: a
// 3-stage chain at the given period (the same construction cmd/btrlive
// has always used, shared so orchestrator and node processes agree on it
// by construction).
func DefaultWorkload(period sim.Time) *flow.Graph {
	return flow.Chain(3, period, sim.Millisecond, 64, flow.CritA)
}

// ProcSpec fully determines one node process. Identical specs modulo the
// Node field must be handed to every process of a deployment: each
// rebuilds the same strategy and keys from them.
type ProcSpec struct {
	Node     int    `json:"node"`
	Topo     string `json:"topo"`
	Nodes    int    `json:"nodes"`
	F        int    `json:"f"`
	Seed     uint64 `json:"seed"`
	PeriodUS int64  `json:"period_us"`
	MarginUS int64  `json:"margin_us"`
	Horizon  uint64 `json:"horizon"`

	// ForgiveUS is the parole clock (runtime.Config.ForgiveAfter) in
	// microseconds; zero keeps classic mode (convictions never expire,
	// no budget verdicts). Must agree across every process of a
	// deployment like the other plan inputs.
	ForgiveUS int64 `json:"forgive_us,omitempty"`

	// Addrs is the full listen-address vector, index = node ID. Empty on
	// first spawn: the process then listens on a dynamic port, reports it
	// in its ready line, and waits for the parent's "peers" line. A
	// restarted process gets the established vector and rebinds its slot.
	Addrs []string `json:"addrs,omitempty"`

	// Fault/FaultAt self-inject a catalog behavior (FaultKinds) at the
	// given period. The orchestrator sets them only on the victim.
	Fault   string `json:"fault,omitempty"`
	FaultAt uint64 `json:"fault_at,omitempty"`

	// StartPeriod aligns a process joining a running cluster: logical
	// t=0 backdates so the process's clock agrees with peers already at
	// period StartPeriod (sim.WallScheduler.StartAt), and its executive
	// begins at that period boundary.
	StartPeriod uint64 `json:"start_period,omitempty"`

	// Standby brings up the transport (listen, dial, heartbeats) without
	// starting the executive: how a killed-and-restarted process rejoins.
	// The cluster has failed over away from it; re-admission into the
	// active schedule is the membership layer's job, which multi-process
	// mode does not support yet, so the repaired node idles connected.
	Standby bool `json:"standby,omitempty"`

	// ServeClients additionally opens the client-facing register service
	// (internal/client.Server) on a second listener; its address rides in
	// the ready event's client_addr. Multi-process mode has no membership
	// epochs, so the service pins epoch 0 with every slot a member.
	ServeClients bool `json:"serve_clients,omitempty"`

	// ClientAddrs is the client-service address vector, index = node ID —
	// the client-side twin of Addrs. Empty on first spawn (dynamic port);
	// a restarted process gets the established vector and rebinds its
	// slot so in-flight load-generator clients can redial it.
	ClientAddrs []string `json:"client_addrs,omitempty"`

	Verbose bool `json:"verbose,omitempty"`
}

// ProcLink is one outgoing link's supervision counters in a done event.
type ProcLink struct {
	Peer       int    `json:"peer"`
	Dials      int    `json:"dials"`
	Reconnects int    `json:"reconnects"`
	Connected  bool   `json:"connected"`
	Drops      uint64 `json:"drops"`
	// Shed is the subset of Drops charged to backpressure shedding (queue
	// full), as opposed to disconnected-link or encode-guard drops.
	Shed uint64 `json:"shed,omitempty"`
}

// ProcEvent is one child-to-parent stdout line.
type ProcEvent struct {
	Ev   string `json:"ev"` // ready | up | act | done
	Node int    `json:"node"`

	Addr string `json:"addr,omitempty"` // ready
	// ClientAddr is the register service's listen address (ready events
	// of specs with ServeClients set).
	ClientAddr string `json:"client_addr,omitempty"`

	Sink   string `json:"sink,omitempty"` // act
	Period uint64 `json:"period"`
	Value  string `json:"value,omitempty"` // hex
	AtUS   int64  `json:"at_us,omitempty"` // logical actuation time

	Acts      int        `json:"acts,omitempty"` // done
	Evidence  int        `json:"evidence,omitempty"`
	Switches  int        `json:"switches,omitempty"`
	Connected int        `json:"connected,omitempty"`
	Links     []ProcLink `json:"links,omitempty"`
	// OverBudget/Reconciled count the budget verdicts this node saw
	// (evidence kinds over-budget / reconciled) — nonzero only when the
	// spec carries a parole clock (ForgiveUS > 0).
	OverBudget int `json:"over_budget,omitempty"`
	Reconciled int `json:"reconciled,omitempty"`
}

// MaybeRunNodeProc turns the process into a deployment node when
// BTR_PROC_SPEC is set, and never returns in that case. Call it first
// thing in main (and in TestMain of packages whose tests orchestrate
// multi-process deployments — the test binary re-executes itself).
func MaybeRunNodeProc() {
	raw := os.Getenv(ProcSpecEnv)
	if raw == "" {
		return
	}
	var spec ProcSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "btr node: bad %s: %v\n", ProcSpecEnv, err)
		os.Exit(2)
	}
	if err := RunNodeProc(spec, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "btr node %d: %v\n", spec.Node, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// procEmitter serializes JSON event lines: acts come from scheduler
// callbacks while ready/done come from the control goroutine.
type procEmitter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func (e *procEmitter) emit(ev ProcEvent) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_ = e.enc.Encode(ev) // a broken pipe means the parent died; exit paths handle it
}

// RunNodeProc runs one node of a multi-process deployment to completion:
// listen, handshake the address vector, build the full system, execute
// this node's slot for the configured horizon while streaming actuations,
// and emit a final done event with transport supervision counters.
func RunNodeProc(spec ProcSpec, in io.Reader, out io.Writer) error {
	topo, err := ProcTopology(spec.Topo, spec.Nodes)
	if err != nil {
		return err
	}
	if spec.Node < 0 || spec.Node >= topo.N {
		return fmt.Errorf("node %d outside topology of %d slots", spec.Node, topo.N)
	}
	period := sim.Time(spec.PeriodUS)
	if period <= 0 {
		return fmt.Errorf("non-positive period %dus", spec.PeriodUS)
	}
	if spec.Horizon == 0 {
		return fmt.Errorf("zero horizon")
	}
	self := network.NodeID(spec.Node)
	workload := DefaultWorkload(period)
	opts := plan.DefaultOptions(spec.F, 100*period)
	opts.WatchdogMargin = sim.Time(spec.MarginUS)
	strategy, err := plan.Build(workload, topo, opts)
	if err != nil {
		return fmt.Errorf("planning failed: %w", err)
	}

	listen := "127.0.0.1:0"
	addrs := spec.Addrs
	switch {
	case len(addrs) == 0:
		// dynamic port; vector arrives on stdin
	case len(addrs) == topo.N:
		listen = addrs[self]
	default:
		return fmt.Errorf("address vector has %d entries, topology has %d slots", len(addrs), topo.N)
	}
	lis, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}

	// The client-facing register service rides a second listener, fully
	// outside the BTR transport: replication is client-driven, so the
	// service is a passive store plus the deployment's (fixed) view.
	var clientSrv *client.Server
	clientAddr := ""
	if spec.ServeClients {
		serveAt := ""
		switch {
		case len(spec.ClientAddrs) == 0:
			// dynamic port, reported in the ready event
		case len(spec.ClientAddrs) == topo.N:
			serveAt = spec.ClientAddrs[spec.Node]
		default:
			lis.Close()
			return fmt.Errorf("client address vector has %d entries, topology has %d slots", len(spec.ClientAddrs), topo.N)
		}
		members := make([]uint32, topo.N)
		for i := range members {
			members[i] = uint32(i)
		}
		clientSrv, err = client.NewServer(serveAt, client.NewRegisterStore(), client.NewViewState(0, members))
		if err != nil {
			lis.Close()
			return fmt.Errorf("client service listen: %w", err)
		}
		clientAddr = clientSrv.Addr()
		defer clientSrv.Close()
	}

	em := &procEmitter{enc: json.NewEncoder(out)}
	em.emit(ProcEvent{Ev: "ready", Node: spec.Node, Addr: lis.Addr().String(), ClientAddr: clientAddr})

	cmds := make(chan string, 8)
	go func() {
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			cmds <- strings.TrimSpace(sc.Text())
		}
		close(cmds)
	}()
	// Same predicate as the listen-address switch above: any empty vector
	// (nil or zero-length) means dynamic ports, so the full vector must
	// arrive on stdin before the transport can be built.
	if len(addrs) == 0 {
		line, ok := <-cmds
		fields := strings.Fields(line)
		if !ok || len(fields) != topo.N+1 || fields[0] != "peers" {
			lis.Close()
			return fmt.Errorf("expected %q line with %d addresses, got %q", "peers", topo.N, line)
		}
		addrs = fields[1:]
	}

	// Distinct scheduler seeds keep per-process PRNG streams independent;
	// everything correctness-relevant (keys, plans) derives from the
	// shared spec.Seed instead.
	w := sim.NewWallScheduler(spec.Seed ^ (uint64(spec.Node+1) * 0x9e3779b97f4a7c15))
	bus := network.NewTCPBus(w, topo, self, addrs, lis, network.DefaultTCPConfig(spec.Seed))
	reg := sig.NewRegistry(spec.Seed, topo.N)

	var acts, evCount, switches int
	var overBudget, reconciled int
	sys := runtime.New(runtime.Config{
		Kernel: w, Net: bus, Registry: reg, Strategy: strategy,
		ForgiveAfter: sim.Time(spec.ForgiveUS),
		OnActuation: func(node network.NodeID, sink flow.TaskID, p uint64, value []byte, at sim.Time) {
			acts++
			em.emit(ProcEvent{Ev: "act", Node: spec.Node, Sink: string(sink), Period: p,
				Value: hex.EncodeToString(value), AtUS: int64(at)})
		},
		OnEvidence: func(node network.NodeID, ev evidence.Evidence, at sim.Time) {
			evCount++
			switch ev.Kind {
			case evidence.KindOverBudget:
				overBudget++
			case evidence.KindReconciled:
				reconciled++
			}
			if spec.Verbose {
				fmt.Fprintf(os.Stderr, "[node %d %10v] evidence %s (accused %d)\n", spec.Node, at, ev.Kind, ev.Accused)
			}
		},
		OnSwitch: func(node network.NodeID, from, to string, at sim.Time) {
			switches++
			if spec.Verbose {
				fmt.Fprintf(os.Stderr, "[node %d %10v] mode switch %q -> %q\n", spec.Node, at, from, to)
			}
		},
	})

	if spec.Fault != "" && spec.Fault != "none" {
		sink := workload.Sinks()[0]
		attack, injected, err := BuildAttack(spec.Fault, self, sink, sim.Time(spec.FaultAt)*period)
		if err != nil {
			bus.Close()
			return err
		}
		if injected {
			w.At(attack.At, func() { attack.Apply(sys) })
		}
	}

	drained := make(chan struct{})
	w.At(sim.Time(spec.Horizon)*period+period, func() { close(drained) })

	// Barrier: everything expensive (key generation, planning, dialing)
	// is behind us, and every outgoing link has established — period 0's
	// messages must not race TCP connection setup, or the first period is
	// judged against a half-connected mesh. When the parent sees every
	// process up and releases the cluster, the logical clocks pin to the
	// same instant modulo pipe latency. The wait is bounded: a peer that
	// never answers (already dead, refusing) must not wedge the barrier.
	for deadline := time.Now().Add(10 * time.Second); bus.ConnectedCount() < bus.LinkCount(); {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if spec.Verbose {
		fmt.Fprintf(os.Stderr, "[node %d] up: %d/%d links connected\n", spec.Node, bus.ConnectedCount(), bus.LinkCount())
	}
	em.emit(ProcEvent{Ev: "up", Node: spec.Node})
	started := false
	for !started {
		line, ok := <-cmds
		switch {
		case !ok:
			bus.Close()
			return fmt.Errorf("stdin closed before %q", "go")
		case line == "go":
			started = true
		case line == "quit":
			bus.Close()
			return nil
		}
	}
	if spec.Verbose {
		fmt.Fprintf(os.Stderr, "[node %d] go at wall %s\n", spec.Node, time.Now().Format("15:04:05.000000"))
	}
	if !spec.Standby {
		sys.StartNodeFrom(self, spec.StartPeriod)
	}
	w.StartAt(sim.Time(spec.StartPeriod) * period)

	running := true
	for running {
		select {
		case <-drained:
			running = false
		case line, ok := <-cmds:
			if !ok {
				// stdin EOF: keep running to the horizon (a flag-driven
				// per-node invocation has no parent driving stdin).
				cmds = nil
				break
			}
			fields := strings.Fields(line)
			if len(fields) == 0 {
				break
			}
			switch fields[0] {
			case "quit":
				running = false
			case "part":
				for _, peer := range partTargets(topo, self, fields[1:]) {
					bus.SetPeerRefused(peer, true)
				}
			case "heal":
				for _, peer := range topo.Neighbors(self) {
					bus.SetPeerRefused(peer, false)
				}
			}
		}
	}
	w.Close() // joins the executor: the counters below are quiescent

	if spec.Verbose {
		st := bus.Snapshot()
		fmt.Fprintf(os.Stderr, "[node %d] transport: sent=%v delivered=%v dropped=%v shed=%v\n",
			spec.Node, st.MsgsSent, st.MsgsDelivered, st.MsgsDropped, st.MsgsShed)
	}
	var links []ProcLink
	for _, st := range bus.LinkStats() {
		links = append(links, ProcLink{
			Peer: int(st.Peer), Dials: st.Dials, Reconnects: st.Reconnects,
			Connected: st.Connected, Drops: st.Drops, Shed: st.Shed,
		})
	}
	em.emit(ProcEvent{
		Ev: "done", Node: spec.Node,
		Acts: acts, Evidence: evCount, Switches: switches,
		Connected: bus.ConnectedCount(), Links: links,
		OverBudget: overBudget, Reconciled: reconciled,
	})
	bus.Close()
	return nil
}

// partTargets resolves a "part" command's arguments (node IDs, default:
// every neighbor) to peers to refuse.
func partTargets(topo *network.Topology, self network.NodeID, args []string) []network.NodeID {
	if len(args) == 0 {
		return topo.Neighbors(self)
	}
	var out []network.NodeID
	for _, a := range args {
		if v, err := strconv.Atoi(a); err == nil && v >= 0 && v < topo.N {
			out = append(out, network.NodeID(v))
		}
	}
	return out
}
