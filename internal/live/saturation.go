package live

// Saturation probing: how many evidence-channel events per second can a
// live deployment absorb before it stops meeting its deadlines, and does
// it still recover within the provable bound R when a fault lands while
// the transport is loaded to ~80% of that measured saturation?
//
// The probe is deliberately adversarial — the load generator is the §4.3
// bogus-evidence flooder, whose junk is unverifiable and convicts the
// flooder almost immediately. The flood keeps running after conviction,
// so the transport's class-aware shedding and the batched signature
// ingest (not the conviction machinery) are what carry the deployment:
// the sustained rate is a transport/crypto capacity number, not a
// detector quality number. Every quantity here is wall-clock and
// machine-bound; the invariants (a positive sustained rate, recovery
// within R at ≥80% of it) are what the bench comparator gates.

import (
	"fmt"
	"math"

	"btr/internal/adversary"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// SaturationConfig describes one saturation probe family: a deployment
// shape plus an ascending ladder of per-period flood intensities.
type SaturationConfig struct {
	Seed    uint64
	Topo    string // BuildTopology family
	Nodes   int
	F       int // must be >= 2: the flooder self-convicts, spending one fault budget slot
	Period  sim.Time
	Margin  sim.Time
	Horizon uint64
	// Ladder is the ascending list of bogus envelopes injected per period
	// (each sprayed to every flooder neighbor, so the offered message rate
	// is count × degree / period).
	Ladder []int
}

// SaturationPoint is one probed ladder rung.
type SaturationPoint struct {
	PerPeriod    int     // bogus envelopes per period (per neighbor)
	OfferedEPS   float64 // offered flood messages per second (count × degree / period)
	DeliveredEPS float64 // total transport deliveries per second, all classes
	Missed       int     // sink deadlines missed (the collapse signal)
	Wrong        int
	Dropped      uint64 // transport drops, all classes
	Shed         uint64 // subset of Dropped: backpressure sheds
	// Sustained: the deployment met every deadline AND the transport
	// absorbed the offered rate without material backpressure shedding
	// (sheds ≤ 1% of deliveries). Past saturation the class-aware
	// shedding keeps deadlines clean by design — foreground is shed
	// last — so deadline misses alone cannot locate the knee; the
	// delivered-rate plateau (mass shedding) is the collapse signal.
	Sustained bool
}

// SaturationResult is the measured ladder plus the knee.
type SaturationResult struct {
	Points []SaturationPoint
	// SustainablePerPeriod is the largest rung that stayed clean (0 when
	// even the smallest rung collapsed); SustainableEPS is its offered
	// message rate.
	SustainablePerPeriod int
	SustainableEPS       float64
}

// LoadedRecovery is one recovery-under-load measurement: a catalog fault
// against a deployment whose evidence channel carries a sustained bogus
// flood at the given rate.
type LoadedRecovery struct {
	PerPeriod int
	LoadEPS   float64
	Recovery  sim.Time // measured wall-clock recovery
	Bound     sim.Time // provable R
	WithinR   bool
	Missed    int
	Wrong     int
	Delivered uint64
	Dropped   uint64
	Shed      uint64
}

// saturationDeployment builds one live deployment of the probe shape.
func saturationDeployment(cfg SaturationConfig) (*Deployment, error) {
	topo, err := BuildTopology(cfg.Topo, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	opts := plan.DefaultOptions(cfg.F, 100*cfg.Period)
	opts.WatchdogMargin = cfg.Margin
	return New(Config{
		Seed:     cfg.Seed,
		Workload: DefaultWorkload(cfg.Period),
		Topology: topo,
		PlanOpts: opts,
		Horizon:  cfg.Horizon,
	})
}

// floodNode picks the flooder: the lowest node ID that is not the
// externally visible victim, so a recovery run can fault the victim
// while the flood keeps running from a different (self-convicting) node.
func floodNode(d *Deployment) network.NodeID {
	victim := FirstSinkNode(d)
	for n := 0; n < d.Cfg.Topology.N; n++ {
		if network.NodeID(n) != victim {
			return network.NodeID(n)
		}
	}
	return victim
}

// offeredEPS converts a per-period spray count into offered messages per
// second across the flooder's links.
func offeredEPS(topo *network.Topology, flooder network.NodeID, perPeriod int, period sim.Time) float64 {
	degree := len(topo.Neighbors(flooder))
	return float64(perPeriod*degree) / (float64(period) / float64(sim.Second))
}

// MeasureSaturation walks the ladder: one full live deployment per rung,
// a sustained bogus flood from period 1 onward, sink deadlines judged as
// in every other live run. A rung is sustained when the run stays
// completely clean (no missed, no wrong periods). Rungs keep running
// past the first collapse so the ladder shows the shape of the fall, not
// just the knee.
func MeasureSaturation(cfg SaturationConfig) (*SaturationResult, error) {
	if len(cfg.Ladder) == 0 {
		return nil, fmt.Errorf("live: saturation ladder is empty")
	}
	res := &SaturationResult{}
	for _, perPeriod := range cfg.Ladder {
		perPeriod := perPeriod
		d, err := saturationDeployment(cfg)
		if err != nil {
			return nil, err
		}
		flooder := floodNode(d)
		adversary.FloodBogus(flooder, perPeriod, cfg.Period).Install(d)
		// The flood is load, not the fault under test: drop the injection
		// record so recovery attribution stays about catalog faults.
		d.report.FaultTimes = nil
		rep := d.Run()
		wallSecs := float64(rep.Horizon) / float64(sim.Second)
		delivered := totalDelivered(rep.NetStats)
		shed := rep.NetStats.TotalShed()
		pt := SaturationPoint{
			PerPeriod:    perPeriod,
			OfferedEPS:   offeredEPS(d.Cfg.Topology, flooder, perPeriod, cfg.Period),
			DeliveredEPS: float64(delivered) / wallSecs,
			Missed:       rep.MissedPeriods,
			Wrong:        rep.WrongValues,
			Dropped:      totalDropped(rep.NetStats),
			Shed:         shed,
			Sustained:    rep.MissedPeriods == 0 && rep.WrongValues == 0 && shed*100 <= delivered,
		}
		res.Points = append(res.Points, pt)
	}
	// The knee is the last sustained rung before the first collapse
	// (C8Knee semantics): a rung above a collapsed one does not extend
	// the sustainable rate even if it happened to stay clean.
	for _, pt := range res.Points {
		if !pt.Sustained {
			break
		}
		res.SustainablePerPeriod = pt.PerPeriod
		res.SustainableEPS = pt.OfferedEPS
	}
	return res, nil
}

// MeasureRecoveryUnderLoad injects a corrupt-all fault at the victim
// while the bogus flood runs at the given per-period rate (intended:
// ceil(0.8 × the measured sustainable rate) — LoadFractionFor computes
// the count). The flood starts at period 1, the fault lands at period 4,
// and the measured recovery is judged against the strategy's provable
// bound R exactly as in the unloaded C5 soak.
func MeasureRecoveryUnderLoad(cfg SaturationConfig, perPeriod int) (*LoadedRecovery, error) {
	d, err := saturationDeployment(cfg)
	if err != nil {
		return nil, err
	}
	flooder := floodNode(d)
	victim := FirstSinkNode(d)
	adversary.FloodBogus(flooder, perPeriod, cfg.Period).Install(d)
	d.report.FaultTimes = nil // the flood is load; only the fault below is judged
	adversary.CorruptEverything(victim, 4*cfg.Period).Install(d)
	rep := d.Run()
	return &LoadedRecovery{
		PerPeriod: perPeriod,
		LoadEPS:   offeredEPS(d.Cfg.Topology, flooder, perPeriod, cfg.Period),
		Recovery:  rep.MaxRecovery(),
		Bound:     rep.RNeeded,
		WithinR:   rep.MaxRecovery() <= rep.RNeeded,
		Missed:    rep.MissedPeriods,
		Wrong:     rep.WrongValues,
		Delivered: totalDelivered(rep.NetStats),
		Dropped:   totalDropped(rep.NetStats),
		Shed:      rep.NetStats.TotalShed(),
	}, nil
}

// LoadFractionFor returns the per-period flood count closest to (but not
// below) the target fraction of the sustained rate, plus the fraction it
// actually realizes. A zero sustained rate yields (0, 0).
func LoadFractionFor(sustainedPerPeriod int, frac float64) (perPeriod int, actual float64) {
	if sustainedPerPeriod <= 0 {
		return 0, 0
	}
	perPeriod = int(math.Ceil(frac * float64(sustainedPerPeriod)))
	if perPeriod > sustainedPerPeriod {
		perPeriod = sustainedPerPeriod
	}
	return perPeriod, float64(perPeriod) / float64(sustainedPerPeriod)
}

func totalDelivered(s network.Stats) uint64 {
	var t uint64
	for _, v := range s.MsgsDelivered {
		t += v
	}
	return t
}

func totalDropped(s network.Stats) uint64 {
	var t uint64
	for _, v := range s.MsgsDropped {
		t += v
	}
	return t
}
