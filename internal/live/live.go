// Package live boots BTR deployments on the wall clock: the same plan
// engine, detectors, evidence distribution, and mode switcher that run
// under the discrete-event simulator execute here on a sim.WallScheduler
// with the channel-based network.Bus transport. Nothing in the runtime
// changes between the two modes — that is the point. The paper's claim is
// that bounded-time recovery is a *runtime* property; this package is
// where the claim meets real asynchrony: goroutine shaping lanes, timer
// jitter, and crypto that costs actual CPU, with recovery measured in
// wall-clock time against the strategy's provable bound R.
//
// A Deployment assembles everything, InjectAt schedules fault injections
// (the adversary package's Attack scripts install unchanged via
// adversary.Injector), and Run executes the configured horizon and
// returns a Report with measured wall-clock recovery intervals.
//
// The package also carries the multi-process deployment mode: one OS
// process per node over the real-socket network.TCPBus. RunNodeProc is
// the child side (one node slot, driven over stdin/stdout by a parent),
// RunOrchestrator the parent side — it spawns the node processes, acts
// as the physical plant, injects process-level faults (SIGKILL,
// SIGKILL-and-restart, SIGSTOP/SIGCONT, userspace partitions) alongside
// the in-process catalog, and judges measured recovery against the same
// provable bound R. MaybeRunNodeProc is the re-exec hook every
// orchestrating binary must call at startup.
package live

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/member"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plan/cache"
	"btr/internal/runtime"
	"btr/internal/sig"
	"btr/internal/sim"
)

// Oracle returns the expected (correct) output value for a sink at a
// period (same contract as core.Oracle).
type Oracle func(sink flow.TaskID, period uint64) []byte

// Config describes one live deployment. It mirrors core.Config minus the
// simulation-only knobs; the Horizon is real wall-clock time
// (Horizon × workload period).
type Config struct {
	Seed     uint64
	Workload *flow.Graph
	Topology *network.Topology
	PlanOpts plan.Options
	Net      network.Config

	// PlanCache, when set, builds the strategy through the incremental
	// plan engine and wires it into node failover, exactly as in core.
	PlanCache *cache.Cache

	// Members, when non-nil, enables online membership reconfiguration
	// (same contract as core.Config.Members): Topology is the slot
	// universe, the listed slots are the genesis epoch's active members,
	// and Reconfigure schedules join/retire/replace epochs on the wall
	// clock. The Bus opens and closes shaping lanes as epochs activate.
	Members []network.NodeID

	// Optional semantic overrides (plants install their own).
	Compute runtime.TaskFunc
	Source  runtime.SourceFunc
	Oracle  Oracle

	// Horizon is the number of periods to run on the wall clock.
	Horizon uint64

	// EvidenceRateLimit forwards to the runtime (0 = default).
	EvidenceRateLimit int

	// OnActuation, if set, observes every actuation command.
	OnActuation runtime.ActuationFunc
	// OnEvidence and OnSwitch, if set, observe evidence acceptance and
	// mode switches (for streaming progress; report counters are kept
	// either way).
	OnEvidence runtime.EvidenceFunc
	OnSwitch   runtime.SwitchFunc
}

// Deployment is an assembled live system ready to Run.
type Deployment struct {
	Cfg      Config
	Sched    *sim.WallScheduler
	Bus      *network.Bus
	Registry *sig.Registry
	Strategy *plan.Strategy
	Runtime  *runtime.System
	// PlanEngine is the incremental plan engine backing this deployment
	// (nil unless Config.PlanCache was set).
	PlanEngine *cache.Engine
	// MemberPlanner is the epoch planner backing this deployment (nil
	// unless Config.Members was set).
	MemberPlanner *member.Planner

	oracle Oracle
	report *Report

	// Monitor state, mutated only from scheduler callbacks; the report is
	// read after Close, so no locking is needed (the executor join in
	// Close is the synchronization point).
	first map[string]bool
	got   map[string][]byte

	// drained closes when the end-of-horizon marker event fires — because
	// dispatch is in (time, insertion) order, every deadline check has
	// run by then even if the executor lags the wall clock.
	drained  chan struct{}
	startRun sync.Once
}

// Report aggregates what a live run measured. All times are wall-clock
// microseconds since the deployment started.
type Report struct {
	Horizon sim.Time
	Period  sim.Time
	RNeeded sim.Time // the strategy's provable recovery bound

	PerSink    map[flow.TaskID]*metrics.Timeline
	FaultTimes []sim.Time

	Actuations    int
	WrongValues   int
	MissedPeriods int

	EvidenceByKind  map[evidence.Kind]int
	FirstEvidenceAt sim.Time
	SwitchTimes     []sim.Time
	NetStats        network.Stats

	// Epochs records every membership reconfiguration (empty without
	// Config.Members; rejected proposals appear with Err set);
	// EpochReplans counts epoch-planner syntheses.
	Epochs       []EpochRow
	EpochReplans uint64
}

// EpochRow is one membership epoch's wall-clock lifecycle (recorded by
// the runtime operator; the same rows core exposes).
type EpochRow = runtime.EpochRow

// MaxEpochR returns the largest provable recovery bound across every
// epoch of the run (RNeeded without epochs).
func (r *Report) MaxEpochR() sim.Time {
	return runtime.EpochMaxR(r.RNeeded, r.Epochs)
}

// RBoundFor returns the recovery bound for a fault whose recovery
// window is [t, end]: the largest R among the epochs active in that
// window (genesis included).
func (r *Report) RBoundFor(t, end sim.Time) sim.Time {
	return runtime.EpochRBound(r.RNeeded, r.Epochs, t, end)
}

// New validates the config, runs the offline planner, and wires a
// runtime onto a wall scheduler and live bus. Nothing moves until Run.
func New(cfg Config) (*Deployment, error) {
	if cfg.Horizon == 0 {
		cfg.Horizon = 40
	}
	if cfg.Net.EvidenceShare == 0 && cfg.Net.LossProb == 0 {
		cfg.Net = network.DefaultConfig()
	}
	var strategy *plan.Strategy
	var planner runtime.PlanSource
	var eng *cache.Engine
	var mplanner *member.Planner
	var epochCfg *runtime.EpochConfig
	switch {
	case cfg.Members != nil:
		mplanner = member.NewPlanner(cfg.Workload, cfg.PlanOpts, cfg.PlanCache)
		genesis := member.Genesis(cfg.Members)
		glog, err := member.NewLog(cfg.Topology, genesis)
		if err != nil {
			return nil, fmt.Errorf("live: invalid initial membership: %w", err)
		}
		ep0, err := mplanner.ForEpoch(genesis, glog.Wiring())
		if err != nil {
			return nil, fmt.Errorf("live: planning failed: %w", err)
		}
		strategy = ep0.Strategy
		planner = ep0.Resolve
		epochCfg = &runtime.EpochConfig{Genesis: genesis, Resolve: runtime.PlannerResolve(mplanner)}
	case cfg.PlanCache != nil:
		eng = cache.NewEngine(cfg.Workload, cfg.Topology, cfg.PlanOpts, cfg.PlanCache)
		s, err := eng.BuildStrategy()
		if err != nil {
			return nil, fmt.Errorf("live: planning failed: %w", err)
		}
		strategy = s
		planner = eng.Resolve
	default:
		s, err := plan.Build(cfg.Workload, cfg.Topology, cfg.PlanOpts)
		if err != nil {
			return nil, fmt.Errorf("live: planning failed: %w", err)
		}
		strategy = s
	}

	w := sim.NewWallScheduler(cfg.Seed)
	bus := network.NewBus(w, cfg.Topology, cfg.Net)
	reg := sig.NewRegistry(cfg.Seed, cfg.Topology.N)

	d := &Deployment{
		Cfg: cfg, Sched: w, Bus: bus, Registry: reg, Strategy: strategy,
		PlanEngine:    eng,
		MemberPlanner: mplanner,
		first:         map[string]bool{},
		got:           map[string][]byte{},
		drained:       make(chan struct{}),
	}
	source := cfg.Source
	if source == nil {
		source = evidence.SourceValue
	}
	d.oracle = cfg.Oracle
	if d.oracle == nil {
		d.oracle = Oracle(hashOracle(cfg.Workload, source))
	}
	rep := &Report{
		Horizon:         sim.Time(cfg.Horizon) * cfg.Workload.Period,
		Period:          cfg.Workload.Period,
		RNeeded:         strategy.RNeeded,
		PerSink:         map[flow.TaskID]*metrics.Timeline{},
		EvidenceByKind:  map[evidence.Kind]int{},
		FirstEvidenceAt: sim.Never,
	}
	for _, sk := range cfg.Workload.Sinks() {
		rep.PerSink[sk] = metrics.NewTimeline(0, true)
	}
	d.report = rep

	d.Runtime = runtime.New(runtime.Config{
		Kernel: w, Net: bus, Registry: reg, Strategy: strategy, Planner: planner, Epochs: epochCfg,
		Compute: cfg.Compute, Source: source,
		EvidenceRateLimit: cfg.EvidenceRateLimit,
		OnActuation: func(node network.NodeID, sink flow.TaskID, period uint64, value []byte, at sim.Time) {
			rep.Actuations++
			if cfg.OnActuation != nil {
				cfg.OnActuation(node, sink, period, value, at)
			}
			key := fmt.Sprintf("%s|%d", sink, period)
			if d.first[key] {
				return // the plant acts on the first command only
			}
			d.first[key] = true
			d.got[key] = append([]byte(nil), value...)
		},
		OnEvidence: func(node network.NodeID, ev evidence.Evidence, at sim.Time) {
			rep.EvidenceByKind[ev.Kind]++
			if at < rep.FirstEvidenceAt {
				rep.FirstEvidenceAt = at
			}
			if cfg.OnEvidence != nil {
				cfg.OnEvidence(node, ev, at)
			}
		},
		OnSwitch: func(node network.NodeID, from, to string, at sim.Time) {
			rep.SwitchTimes = append(rep.SwitchTimes, at)
			if cfg.OnSwitch != nil {
				cfg.OnSwitch(node, from, to, at)
			}
		},
	})

	// End-of-horizon marker: it sorts after every deadline check below,
	// so when it fires the run is fully measured.
	w.At(rep.Horizon+rep.Period, func() { close(d.drained) })

	// Per-period deadline checks for every sink, scheduled on the wall
	// clock like everything else so they serialize with actuations.
	period := cfg.Workload.Period
	for p := uint64(0); p < cfg.Horizon; p++ {
		p := p
		for _, sk := range cfg.Workload.Sinks() {
			sk := sk
			deadline := sim.Time(p)*period + cfg.Workload.Tasks[sk].Deadline
			w.At(deadline, func() {
				key := fmt.Sprintf("%s|%d", sk, p)
				v, present := d.got[key]
				ok := present && string(v) == string(d.oracle(sk, p))
				if !present {
					rep.MissedPeriods++
				} else if !ok {
					rep.WrongValues++
				}
				rep.PerSink[sk].Set(deadline, ok)
			})
		}
	}
	return d, nil
}

// InjectAt schedules a fault injection at wall time t and records it for
// recovery attribution (adversary.Injector).
func (d *Deployment) InjectAt(t sim.Time, f func(*runtime.System)) {
	d.report.FaultTimes = append(d.report.FaultTimes, t)
	d.Sched.At(t, func() { f(d.Runtime) })
}

// Reconfigure schedules a membership reconfiguration (join / retire /
// replace) to be proposed at wall time t. Requires Config.Members.
func (d *Deployment) Reconfigure(t sim.Time, delta member.Delta) {
	d.Runtime.ScheduleReconfig(t, delta)
}

// Run starts the executive, lets the deployment run its horizon of real
// wall-clock time, shuts everything down leak-free, and returns the
// report. Call it once.
func (d *Deployment) Run() *Report {
	d.startRun.Do(func() {
		d.Runtime.Start()
		d.Sched.Start()
	})
	// Wait for the in-order end-of-horizon marker rather than the raw
	// wall clock: even a lagging executor has run every deadline check by
	// the time it fires. The timeout is a hung-deployment backstop only.
	select {
	case <-d.drained:
	case <-time.After(time.Duration(d.report.Horizon+d.report.Period)*time.Microsecond + 30*time.Second):
	}
	d.Close()
	d.report.NetStats = d.Bus.Snapshot()
	if d.MemberPlanner != nil {
		d.report.EpochReplans = d.MemberPlanner.Replans()
		d.report.Epochs = d.Runtime.EpochRows()
	}
	return d.report
}

// Close stops dispatch and joins every goroutine the deployment started
// (executor and bus lanes). Idempotent; Run calls it automatically.
func (d *Deployment) Close() {
	d.Sched.Close()
	d.Bus.Close()
}

// FirstSinkNode returns the node hosting the earliest-finishing sink
// replica in the deployment's base plan (ties broken by lowest node ID)
// — the externally visible victim attack scripts target, because only
// the first-actuating replica's corruption shows up at the plant.
func FirstSinkNode(d *Deployment) network.NodeID {
	return VictimOf(d.Strategy)
}

// VictimOf is FirstSinkNode on a bare strategy — multi-process drivers
// (the orchestrator, per-node btrlive) compute the victim before any
// deployment exists.
func VictimOf(s *plan.Strategy) network.NodeID {
	base := s.Plans[""]
	best := network.NodeID(-1)
	var bestFin sim.Time
	for _, id := range base.Aug.TaskIDs() {
		logical, _ := plan.SplitReplica(id)
		if lt, ok := base.Pruned.Tasks[logical]; !ok || !lt.Sink {
			continue
		}
		fin := base.Table.Finish[id]
		node := base.Assign[id]
		if best == -1 || fin < bestFin || (fin == bestFin && node < best) {
			best, bestFin = node, fin
		}
	}
	return best
}

// --- Report analysis (mirrors core.Report) ----------------------------------

// BadIntervals returns the merged wall-clock intervals during which any
// sink produced incorrect output.
func (r *Report) BadIntervals() []metrics.Interval {
	var sinks []flow.TaskID
	for sk := range r.PerSink {
		sinks = append(sinks, sk)
	}
	sort.Slice(sinks, func(i, j int) bool { return sinks[i] < sinks[j] })
	var all []metrics.Interval
	for _, sk := range sinks {
		all = append(all, r.PerSink[sk].FalseIntervals(r.Horizon)...)
	}
	return mergeIntervals(all)
}

// Recoveries pairs the run's fault injections with measured wall-clock
// bad-output intervals.
func (r *Report) Recoveries() []metrics.Recovery {
	return metrics.MatchRecoveries(append([]sim.Time(nil), r.FaultTimes...), r.BadIntervals())
}

// MaxRecovery returns the worst measured wall-clock recovery.
func (r *Report) MaxRecovery() sim.Time {
	var max sim.Time
	for _, rec := range r.Recoveries() {
		if rec.Duration() > max {
			max = rec.Duration()
		}
	}
	return max
}

// WithinBound reports whether every measured recovery met the strategy's
// provable bound R.
func (r *Report) WithinBound() bool { return r.MaxRecovery() <= r.RNeeded }

// EvidenceTotal counts all evidence observations.
func (r *Report) EvidenceTotal() int {
	n := 0
	for _, c := range r.EvidenceByKind {
		n += c
	}
	return n
}

func mergeIntervals(ivs []metrics.Interval) []metrics.Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]metrics.Interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := []metrics.Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// hashOracle recursively evaluates the base dataflow graph on the
// deterministic environment samples (same construction as core.HashOracle;
// duplicated to keep live free of a core dependency, so core and live
// stay sibling drivers over the same runtime).
func hashOracle(g *flow.Graph, source runtime.SourceFunc) func(flow.TaskID, uint64) []byte {
	type key struct {
		task   flow.TaskID
		period uint64
	}
	memo := map[key][]byte{}
	var eval func(task flow.TaskID, p uint64) []byte
	eval = func(task flow.TaskID, p uint64) []byte {
		k := key{task, p}
		if v, ok := memo[k]; ok {
			return v
		}
		t := g.Tasks[task]
		var v []byte
		if t.Source {
			v = source(task, p)
		} else {
			var ins []evidence.Record
			for _, e := range g.Inputs(task) {
				ins = append(ins, evidence.Record{Logical: e.From, Value: eval(e.From, p)})
			}
			v = evidence.HashCompute(task, p, ins)
		}
		memo[k] = v
		return v
	}
	return func(sink flow.TaskID, p uint64) []byte { return eval(sink, p) }
}
