//go:build race

package live

// raceDetectorEnabled: see race_off_test.go.
const raceDetectorEnabled = true
