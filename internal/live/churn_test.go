package live

import (
	"runtime"
	"testing"

	btrruntime "btr/internal/runtime"

	"btr/internal/flow"
	"btr/internal/member"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// churnConfig is liveConfig over an 8-slot universe with slots 0..5
// active at genesis — the live churn fixture. The generous period keeps
// it robust under -race on slow hosts (see liveConfig).
func churnConfig(horizon uint64) Config {
	opts := plan.DefaultOptions(1, 5*sim.Second)
	opts.WatchdogMargin = 100 * sim.Millisecond
	return Config{
		Seed:              1,
		Workload:          flow.Chain(3, 300*sim.Millisecond, sim.Millisecond, 64, flow.CritA),
		Topology:          network.FullMesh(8, 20_000_000, 50*sim.Microsecond),
		PlanOpts:          opts,
		Members:           []network.NodeID{0, 1, 2, 3, 4, 5},
		Horizon:           horizon,
		EvidenceRateLimit: 6,
	}
}

// TestLiveChurnJoinRetireLanesAndWatchdogsTearDown is the live churn
// stress: a join and a retire on the wall clock, run under -race in CI.
// It asserts the Bus actually opens lanes toward the joiner and tears
// down the retired slot's lanes, that the retired node holds no armed
// watchdog timers, and (via waitNoLeak) that no lane worker or executor
// goroutine outlives the deployment.
func TestLiveChurnJoinRetireLanesAndWatchdogsTearDown(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock churn soak in -short mode")
	}
	before := runtime.NumGoroutine()
	d, err := New(churnConfig(14))
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	period := d.Cfg.Workload.Period

	// Genesis wiring: only member-member links have lanes. FullMesh(6)
	// has 15 links; 2 directions x 2 classes each.
	if got, want := d.Bus.LaneCount(), 15*4; got != want {
		t.Fatalf("genesis lanes = %d, want %d", got, want)
	}
	d.Reconfigure(3*period, member.Delta{Join: []network.NodeID{6}})
	d.Reconfigure(8*period, member.Delta{Retire: []network.NodeID{0}})
	rep := d.Run()

	if rep.MissedPeriods != 0 || rep.WrongValues != 0 {
		t.Errorf("churn-only live run not clean: missed=%d wrong=%d", rep.MissedPeriods, rep.WrongValues)
	}
	if len(rep.Epochs) != 2 {
		t.Fatalf("recorded %d epochs, want 2: %+v", len(rep.Epochs), rep.Epochs)
	}
	for _, e := range rep.Epochs {
		if e.ActivatedAt == 0 {
			t.Fatalf("epoch %d never activated: %+v", e.Num, e)
		}
	}
	// Final membership {1..6}: again a 6-member mesh, 15 links' lanes.
	if got, want := d.Bus.LaneCount(), 15*4; got != want {
		t.Errorf("final lanes = %d, want %d (retired slot's lanes not torn down?)", got, want)
	}
	if d.Runtime.IsMember(0) || !d.Runtime.IsMember(6) {
		t.Error("final membership wrong")
	}
	if n := d.Runtime.WatchdogCount(0); n != 0 {
		t.Errorf("retired slot 0 still holds %d armed watchdog timers", n)
	}
	if key, ok := d.Runtime.Converged(plan.NewFaultSet()); !ok || key == "" {
		t.Errorf("live members did not converge after churn: %q %v", key, ok)
	}
	waitNoLeak(t, before)
}

// TestLiveChurnWithFaultRecoversWithinEpochBound overlaps a crash fault
// with a replace epoch: the live deployment must keep recovery within
// the worst epoch bound (strictly asserted only without -race, like the
// other wall-clock bounds) and shut down leak-free.
func TestLiveChurnWithFaultRecoversWithinEpochBound(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock churn soak in -short mode")
	}
	before := runtime.NumGoroutine()
	d, err := New(churnConfig(16))
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	period := d.Cfg.Workload.Period
	victim := FirstSinkNode(d)
	d.InjectAt(4*period, func(rt *btrruntime.System) { rt.Crash(victim) })
	d.Reconfigure(7*period, member.Delta{Join: []network.NodeID{6}, Retire: []network.NodeID{victim}})
	rep := d.Run()

	if len(rep.Epochs) != 1 || rep.Epochs[0].ActivatedAt == 0 {
		t.Fatalf("replace epoch did not activate: %+v", rep.Epochs)
	}
	recs := rep.Recoveries()
	if len(recs) == 0 {
		t.Fatal("crash caused no measured recovery (fault not visible?)")
	}
	if !raceDetectorEnabled {
		if max := rep.MaxRecovery(); max > rep.MaxEpochR() {
			t.Errorf("recovery %v exceeded the worst epoch bound %v", max, rep.MaxEpochR())
		}
	}
	// The crashed victim's own view froze at the crash; the operator's
	// authoritative membership is what must exclude it.
	for _, m := range d.Runtime.Members() {
		if m == victim {
			t.Error("crashed victim still in the authoritative membership after replace")
		}
	}
	if !d.Runtime.IsMember(6) {
		t.Error("replacement joiner not active")
	}
	waitNoLeak(t, before)
}
