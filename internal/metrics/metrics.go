// Package metrics provides the measurement machinery for BTR experiments:
// output-correctness timelines (the observable side of Definition 3.1),
// recovery-interval extraction, deadline-miss tracking, latency
// percentiles, and plain-text table/series rendering for the benchmark
// harness.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"btr/internal/sim"
)

// Interval is a half-open time range [Start, End).
type Interval struct{ Start, End sim.Time }

// Duration returns the interval's length.
func (iv Interval) Duration() sim.Time { return iv.End - iv.Start }

func (iv Interval) String() string {
	return fmt.Sprintf("[%v, %v)", iv.Start, iv.End)
}

// Timeline tracks a boolean signal over time (e.g., "outputs correct").
// Mark transitions with Set; query incorrect intervals afterwards.
type Timeline struct {
	start   sim.Time
	state   bool
	flipped []sim.Time // times at which the signal toggled
}

// NewTimeline starts a timeline at t with the given initial state.
func NewTimeline(t sim.Time, initial bool) *Timeline {
	return &Timeline{start: t, state: initial}
}

// Set records the signal value at time t. Setting the current value is a
// no-op; t must be monotonically non-decreasing.
func (tl *Timeline) Set(t sim.Time, v bool) {
	if v == tl.state {
		return
	}
	if len(tl.flipped) > 0 && t < tl.flipped[len(tl.flipped)-1] {
		panic("metrics: timeline set out of order")
	}
	tl.flipped = append(tl.flipped, t)
	tl.state = v
}

// State returns the current value.
func (tl *Timeline) State() bool { return tl.state }

// FalseIntervals returns the maximal intervals during which the signal was
// false, up to horizon.
func (tl *Timeline) FalseIntervals(horizon sim.Time) []Interval {
	var out []Interval
	state := tl.initialState()
	prev := tl.start
	for _, t := range tl.flipped {
		if !state {
			out = append(out, Interval{prev, t})
		}
		state = !state
		prev = t
	}
	if !state && prev < horizon {
		out = append(out, Interval{prev, horizon})
	}
	return out
}

func (tl *Timeline) initialState() bool {
	// state after len(flipped) toggles equals current; recover initial.
	if len(tl.flipped)%2 == 0 {
		return tl.state
	}
	return !tl.state
}

// LongestFalse returns the longest false interval up to horizon (zero
// Interval if none).
func (tl *Timeline) LongestFalse(horizon sim.Time) Interval {
	var worst Interval
	for _, iv := range tl.FalseIntervals(horizon) {
		if iv.Duration() > worst.Duration() {
			worst = iv
		}
	}
	return worst
}

// TotalFalse sums all false time up to horizon.
func (tl *Timeline) TotalFalse(horizon sim.Time) sim.Time {
	var sum sim.Time
	for _, iv := range tl.FalseIntervals(horizon) {
		sum += iv.Duration()
	}
	return sum
}

// Recovery describes one fault-to-recovery episode.
type Recovery struct {
	FaultAt   sim.Time
	RecoverAt sim.Time // end of the last incorrect output attributable to it
}

// Duration is the measured recovery time.
func (r Recovery) Duration() sim.Time { return r.RecoverAt - r.FaultAt }

// MatchRecoveries pairs fault injection times with incorrect-output
// intervals: each fault's recovery extends to the end of the last
// incorrect interval that begins before the next fault. Faults with no
// incorrect output recover instantly (duration 0).
func MatchRecoveries(faults []sim.Time, bad []Interval) []Recovery {
	sort.Slice(faults, func(i, j int) bool { return faults[i] < faults[j] })
	out := make([]Recovery, 0, len(faults))
	for i, f := range faults {
		next := sim.Never
		if i+1 < len(faults) {
			next = faults[i+1]
		}
		rec := Recovery{FaultAt: f, RecoverAt: f}
		for _, iv := range bad {
			if iv.End <= f || iv.Start >= next {
				continue
			}
			if iv.End > rec.RecoverAt {
				rec.RecoverAt = iv.End
			}
		}
		out = append(out, rec)
	}
	return out
}

// Series collects scalar samples for percentile statistics.
type Series struct {
	name    string
	samples []float64
}

// NewSeries creates a named sample collector.
func NewSeries(name string) *Series { return &Series{name: name} }

// Add appends a sample.
func (s *Series) Add(v float64) { s.samples = append(s.samples, v) }

// Merge appends every sample of other (in other's insertion order). It is
// the deterministic reduction step for sharded collection: merging
// per-shard series in a fixed shard order yields the same multiset — and,
// since all statistics here are order-insensitive, the same statistics —
// regardless of how samples were distributed across shards.
func (s *Series) Merge(other *Series) {
	if other == nil {
		return
	}
	s.samples = append(s.samples, other.samples...)
}

// AddTime appends a sim.Time sample in milliseconds.
func (s *Series) AddTime(t sim.Time) { s.Add(t.Millis()) }

// N returns the sample count.
func (s *Series) N() int { return len(s.samples) }

// Percentile returns the p-th percentile (0..100) by nearest-rank; 0 for
// an empty series.
func (s *Series) Percentile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.samples...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean (0 for empty).
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.samples {
		sum += v
	}
	return sum / float64(len(s.samples))
}

// Max returns the maximum sample (0 for empty).
func (s *Series) Max() float64 {
	var max float64
	for i, v := range s.samples {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// Min returns the minimum sample (0 for empty).
func (s *Series) Min() float64 {
	var min float64
	for i, v := range s.samples {
		if i == 0 || v < min {
			min = v
		}
	}
	return min
}

// Table renders experiment results as aligned plain text, the format the
// benchmark harness prints for every reproduced figure/table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Columns: cols}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case sim.Time:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
