package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"btr/internal/sim"
)

func TestTimelineBasics(t *testing.T) {
	tl := NewTimeline(0, true)
	tl.Set(10, false)
	tl.Set(25, true)
	tl.Set(40, false)
	ivs := tl.FalseIntervals(100)
	if len(ivs) != 2 {
		t.Fatalf("false intervals = %v", ivs)
	}
	if ivs[0] != (Interval{10, 25}) || ivs[1] != (Interval{40, 100}) {
		t.Errorf("intervals wrong: %v", ivs)
	}
	if got := tl.LongestFalse(100); got != (Interval{40, 100}) {
		t.Errorf("LongestFalse = %v", got)
	}
	if got := tl.TotalFalse(100); got != 75 {
		t.Errorf("TotalFalse = %v, want 75", got)
	}
}

func TestTimelineInitiallyFalse(t *testing.T) {
	tl := NewTimeline(5, false)
	tl.Set(20, true)
	ivs := tl.FalseIntervals(100)
	if len(ivs) != 1 || ivs[0] != (Interval{5, 20}) {
		t.Errorf("intervals = %v", ivs)
	}
}

func TestTimelineRedundantSet(t *testing.T) {
	tl := NewTimeline(0, true)
	tl.Set(10, true) // no-op
	tl.Set(20, false)
	tl.Set(30, false) // no-op
	if got := len(tl.FalseIntervals(50)); got != 1 {
		t.Errorf("intervals = %d, want 1", got)
	}
}

func TestTimelineAlwaysTrue(t *testing.T) {
	tl := NewTimeline(0, true)
	if ivs := tl.FalseIntervals(100); len(ivs) != 0 {
		t.Errorf("intervals = %v, want none", ivs)
	}
	if tl.TotalFalse(100) != 0 {
		t.Error("TotalFalse nonzero")
	}
}

func TestTimelineOutOfOrderPanics(t *testing.T) {
	tl := NewTimeline(0, true)
	tl.Set(50, false)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Set did not panic")
		}
	}()
	tl.Set(10, true)
}

func TestTimelinePropertyTotalMatchesIntervals(t *testing.T) {
	f := func(raw []uint16) bool {
		tl := NewTimeline(0, true)
		t1 := sim.Time(0)
		v := true
		for _, r := range raw {
			t1 += sim.Time(r%1000) + 1
			v = !v
			tl.Set(t1, v)
		}
		horizon := t1 + 1000
		var sum sim.Time
		for _, iv := range tl.FalseIntervals(horizon) {
			if iv.End <= iv.Start {
				return false
			}
			sum += iv.Duration()
		}
		return sum == tl.TotalFalse(horizon)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatchRecoveries(t *testing.T) {
	faults := []sim.Time{100, 500}
	bad := []Interval{{120, 180}, {510, 600}}
	recs := MatchRecoveries(faults, bad)
	if len(recs) != 2 {
		t.Fatalf("recoveries = %v", recs)
	}
	if recs[0].Duration() != 80 {
		t.Errorf("first recovery = %v, want 80", recs[0].Duration())
	}
	if recs[1].Duration() != 100 {
		t.Errorf("second recovery = %v, want 100", recs[1].Duration())
	}
}

func TestMatchRecoveriesNoBadOutput(t *testing.T) {
	recs := MatchRecoveries([]sim.Time{100}, nil)
	if len(recs) != 1 || recs[0].Duration() != 0 {
		t.Errorf("recoveries = %v, want single instant recovery", recs)
	}
}

func TestMatchRecoveriesAttributionWindow(t *testing.T) {
	// A bad interval starting after the second fault belongs to the
	// second fault only.
	faults := []sim.Time{100, 200}
	bad := []Interval{{250, 300}}
	recs := MatchRecoveries(faults, bad)
	if recs[0].Duration() != 0 {
		t.Errorf("first fault wrongly charged: %v", recs[0])
	}
	if recs[1].Duration() != 100 {
		t.Errorf("second recovery = %v, want 100", recs[1].Duration())
	}
}

func TestSeriesStats(t *testing.T) {
	s := NewSeries("lat")
	for _, v := range []float64{5, 1, 4, 2, 3} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty")
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Error("empty series stats should be zero")
	}
}

func TestSeriesAddTime(t *testing.T) {
	s := NewSeries("t")
	s.AddTime(1500 * sim.Microsecond)
	if s.Mean() != 1.5 {
		t.Errorf("AddTime stored %v, want 1.5ms", s.Mean())
	}
}

func TestSeriesPercentileMonotone(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewSeries("q")
		for _, v := range vals {
			s.Add(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E2: replication cost", "f", "protocol", "replicas", "util")
	tb.AddRow(1, "BTR", 2, 0.42)
	tb.AddRow(1, "BFT", 4, 0.91)
	tb.Note("source replicas excluded")
	out := tb.String()
	for _, want := range []string{"E2: replication cost", "protocol", "BTR", "0.910", "note: source"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableTimeFormatting(t *testing.T) {
	tb := NewTable("t", "bound")
	tb.AddRow(75 * sim.Millisecond)
	if !strings.Contains(tb.String(), "75.000ms") {
		t.Errorf("time not formatted: %s", tb.String())
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{sim.Millisecond, 2 * sim.Millisecond}
	if iv.String() != "[1.000ms, 2.000ms)" {
		t.Errorf("String = %q", iv.String())
	}
}
