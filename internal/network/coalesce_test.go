package network

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"btr/internal/sim"
)

// TestTCPBusCoalescedFlushDelivers proves the write-side coalescing end
// to end: a backlog accumulated while the peer is partitioned is flushed
// as batch frames when the link heals — evidence first, FIFO within each
// class — and the receiver's pre-verifier sees the coalesced evidence
// batch before delivery (only batch frames reach the pre-verifier, so a
// nonzero count also proves a TypeBatch frame crossed the wire).
func TestTCPBusCoalescedFlushDelivers(t *testing.T) {
	topo := FullMesh(2, 20_000_000, 50*sim.Microsecond)
	scheds, buses := tcpCluster(t, topo, nil)

	const nFg, nEv = 30, 10
	var mu sync.Mutex
	var order []string
	done := make(chan struct{}, nFg+nEv)
	buses[1].Handle(1, func(m *Message) {
		mu.Lock()
		order = append(order, string(m.Payload))
		mu.Unlock()
		done <- struct{}{}
	})
	var preVerified atomic.Int64
	buses[1].SetPreVerifier(func(ms []*Message) {
		for _, m := range ms {
			if m.Class != ClassEvidence {
				t.Errorf("pre-verifier handed a %v message", m.Class)
			}
		}
		preVerified.Add(int64(len(ms)))
	})

	// Partition the outgoing direction so the backlog piles up in pend.
	buses[0].SetPeerRefused(1, true)
	sent := make(chan struct{})
	scheds[0].At(0, func() {
		for i := 0; i < nFg; i++ {
			if !buses[0].SendDirect(0, 1, ClassForeground, []byte(fmt.Sprintf("f%02d", i))) {
				t.Errorf("foreground send %d refused", i)
			}
		}
		for i := 0; i < nEv; i++ {
			if !buses[0].SendDirect(0, 1, ClassEvidence, []byte(fmt.Sprintf("e%02d", i))) {
				t.Errorf("evidence send %d refused", i)
			}
		}
		close(sent)
	})
	for _, w := range scheds {
		w.Start()
	}
	<-sent
	buses[0].SetPeerRefused(1, false) // heal: the flush is one coalesced write

	for i := 0; i < nFg+nEv; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/%d messages arrived", i, nFg+nEv)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// Evidence drains ahead of the foreground backlog, FIFO within class.
	for i := 0; i < nEv; i++ {
		if want := fmt.Sprintf("e%02d", i); order[i] != want {
			t.Fatalf("order[%d] = %q, want %q (evidence first, FIFO): %v", i, order[i], want, order)
		}
	}
	for i := 0; i < nFg; i++ {
		if want := fmt.Sprintf("f%02d", i); order[nEv+i] != want {
			t.Fatalf("order[%d] = %q, want %q (foreground FIFO): %v", nEv+i, order[nEv+i], want, order)
		}
	}
	if got := preVerified.Load(); got != nEv {
		t.Errorf("pre-verifier saw %d evidence messages, want %d", got, nEv)
	}
}

// TestTCPBusShedsClassAware pins the backpressure policy on a link whose
// peer never answers: foreground tail-drops at QueueDepth, evidence
// borrows foreground's budget by evicting its oldest, and only an
// all-evidence backlog makes evidence evict evidence. Every shed is
// surfaced in MsgsShed (a subset of MsgsDropped) and per-link counters.
func TestTCPBusShedsClassAware(t *testing.T) {
	topo := FullMesh(2, 20_000_000, 50*sim.Microsecond)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	w := sim.NewWallScheduler(1)
	cfg := DefaultTCPConfig(1)
	cfg.QueueDepth = 4 // budget: 4 foreground + 4 borrowed by evidence
	b := NewTCPBus(w, topo, 0, []string{lis.Addr().String(), deadAddr}, lis, cfg)
	defer func() {
		w.Close()
		b.Close()
	}()
	w.Start()
	done := make(chan struct{})
	send := func(class Class, n int) (accepted int) {
		for i := 0; i < n; i++ {
			if b.SendDirect(0, 1, class, []byte("x")) {
				accepted++
			}
		}
		return accepted
	}
	w.At(0, func() {
		defer close(done)
		// Foreground fills its QueueDepth share; the 5th sheds itself.
		if got := send(ClassForeground, 5); got != 4 {
			t.Errorf("foreground accepted = %d, want 4", got)
		}
		// Evidence fills the rest of the shared budget without shedding.
		if got := send(ClassEvidence, 4); got != 4 {
			t.Errorf("evidence accepted = %d, want 4", got)
		}
		// At the ceiling, evidence evicts the oldest queued foreground.
		if got := send(ClassEvidence, 4); got != 4 {
			t.Errorf("evidence over budget accepted = %d, want 4 (evict foreground)", got)
		}
		// Foreground exhausted: evidence now evicts its own oldest.
		if got := send(ClassEvidence, 2); got != 2 {
			t.Errorf("evidence self-evict accepted = %d, want 2", got)
		}
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sends never completed")
	}
	st := b.Snapshot()
	if st.MsgsSent[ClassForeground] != 4 || st.MsgsSent[ClassEvidence] != 10 {
		t.Errorf("sent = %d fg / %d ev, want 4 / 10", st.MsgsSent[ClassForeground], st.MsgsSent[ClassEvidence])
	}
	// Foreground sheds: 1 tail-drop + 4 evictions; evidence sheds: 2.
	if st.MsgsShed[ClassForeground] != 5 || st.MsgsShed[ClassEvidence] != 2 {
		t.Errorf("shed = %d fg / %d ev, want 5 / 2", st.MsgsShed[ClassForeground], st.MsgsShed[ClassEvidence])
	}
	if st.MsgsDropped != st.MsgsShed {
		t.Errorf("every drop here is a shed: dropped %v, shed %v", st.MsgsDropped, st.MsgsShed)
	}
	if got := st.TotalShed(); got != 7 {
		t.Errorf("TotalShed = %d, want 7", got)
	}
	for _, ls := range b.LinkStats() {
		if ls.Drops != 7 || ls.Shed != 7 {
			t.Errorf("link counters = drops %d / shed %d, want 7 / 7", ls.Drops, ls.Shed)
		}
	}
}

// TestBusLaneSheddingPolicy pins the Bus analogue: a lane wedged behind
// a huge frame fills to laneDepth, after which foreground sheds the
// arriving frame (tail-drop) while evidence evicts its oldest so the
// send is still accepted — and both surface in MsgsShed.
func TestBusLaneSheddingPolicy(t *testing.T) {
	// 2 MB/s split evenly: ~1 MB/s per class lane, so a 1.2 MB payload
	// wedges the lane worker in a ~1.2 s shaping sleep while we fill.
	topo := FullMesh(2, 2_000_000, 0)
	w, b := busFixture(t, topo, Config{EvidenceShare: 0.5})
	const extra = 50
	big := make([]byte, 1_200_000)
	done := make(chan struct{})
	w.At(0, func() {
		if !b.SendDirect(0, 1, ClassForeground, big) {
			t.Error("big foreground send refused")
		}
		if !b.SendDirect(0, 1, ClassEvidence, big) {
			t.Error("big evidence send refused")
		}
	})
	w.At(100*sim.Millisecond, func() {
		defer close(done)
		// Both lane workers are mid-sleep: fill each lane to laneDepth,
		// then push extras into the full queues.
		for i := 0; i < laneDepth; i++ {
			if !b.SendDirect(0, 1, ClassForeground, []byte("f")) {
				t.Errorf("foreground fill %d refused", i)
				return
			}
			if !b.SendDirect(0, 1, ClassEvidence, []byte("e")) {
				t.Errorf("evidence fill %d refused", i)
				return
			}
		}
		for i := 0; i < extra; i++ {
			if b.SendDirect(0, 1, ClassForeground, []byte("F")) {
				t.Errorf("foreground over laneDepth accepted (want tail-drop)")
				return
			}
			if !b.SendDirect(0, 1, ClassEvidence, []byte("E")) {
				t.Errorf("evidence over laneDepth refused (want drop-oldest)")
				return
			}
		}
	})
	w.Start()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sends never completed")
	}
	st := b.Snapshot()
	if st.MsgsShed[ClassForeground] != extra {
		t.Errorf("foreground shed = %d, want %d", st.MsgsShed[ClassForeground], extra)
	}
	if st.MsgsShed[ClassEvidence] != extra {
		t.Errorf("evidence shed = %d, want %d", st.MsgsShed[ClassEvidence], extra)
	}
	if st.MsgsSent[ClassEvidence] != 1+laneDepth+extra {
		t.Errorf("evidence sent = %d, want %d (drop-oldest accepts the newest)",
			st.MsgsSent[ClassEvidence], 1+laneDepth+extra)
	}
	if st.MsgsSent[ClassForeground] != 1+laneDepth {
		t.Errorf("foreground sent = %d, want %d", st.MsgsSent[ClassForeground], 1+laneDepth)
	}
}

// TestBusEvidencePreVerify proves the Bus lane worker hands coalesced
// evidence batches to the installed pre-verifier before delivery.
func TestBusEvidencePreVerify(t *testing.T) {
	// ~100 KB/s evidence lane: a 20 KB frame wedges the worker ~200 ms so
	// the two trailing messages coalesce into one drained batch.
	topo := FullMesh(2, 200_000, 0)
	w, b := busFixture(t, topo, Config{EvidenceShare: 0.5})
	var preVerified atomic.Int64
	b.SetPreVerifier(func(ms []*Message) { preVerified.Add(int64(len(ms))) })
	delivered := make(chan string, 8)
	b.Handle(1, func(m *Message) { delivered <- string(m.Payload[:1]) })
	w.At(0, func() {
		b.SendDirect(0, 1, ClassEvidence, make([]byte, 20_000))
	})
	w.At(50*sim.Millisecond, func() {
		b.SendDirect(0, 1, ClassEvidence, []byte("a"))
		b.SendDirect(0, 1, ClassEvidence, []byte("b"))
	})
	w.Start()
	want := []string{"\x00", "a", "b"}
	for i, expect := range want {
		select {
		case got := <-delivered:
			if got != expect {
				t.Fatalf("delivery %d = %q, want %q", i, got, expect)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d deliveries arrived", i, len(want))
		}
	}
	if got := preVerified.Load(); got != 2 {
		t.Errorf("pre-verifier saw %d messages, want 2 (the coalesced batch)", got)
	}
}

// BenchmarkTCPBusEnqueue measures the deferred-encode send path (the
// per-message cost the coalescing write loop amortizes syscalls over),
// including the class-aware shed policy once the backlog saturates.
func BenchmarkTCPBusEnqueue(b *testing.B) {
	topo := FullMesh(2, 20_000_000, 50*sim.Microsecond)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	w := sim.NewWallScheduler(1)
	bus := NewTCPBus(w, topo, 0, []string{lis.Addr().String(), deadAddr}, lis, DefaultTCPConfig(1))
	defer func() {
		w.Close()
		bus.Close()
	}()
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.SendDirect(0, 1, ClassEvidence, payload)
	}
}
