package network

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"btr/internal/sim"
)

// busFixture boots a wall scheduler plus a live bus over topo and returns
// a cleanup that asserts leak-free shutdown.
func busFixture(t *testing.T, topo *Topology, cfg Config) (*sim.WallScheduler, *Bus) {
	t.Helper()
	before := runtime.NumGoroutine()
	w := sim.NewWallScheduler(1)
	b := NewBus(w, topo, cfg)
	t.Cleanup(func() {
		w.Close()
		b.Close()
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > before {
			t.Errorf("goroutine leak after bus shutdown: %d before, %d after", before, g)
		}
	})
	return w, b
}

func TestBusDeliversDirect(t *testing.T) {
	topo := FullMesh(3, 20_000_000, 50*sim.Microsecond)
	w, b := busFixture(t, topo, DefaultConfig())
	var mu sync.Mutex
	var got []*Message
	done := make(chan struct{}, 8)
	b.Handle(1, func(m *Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
		done <- struct{}{}
	})
	w.At(0, func() {
		if !b.SendDirect(0, 1, ClassForeground, []byte("hello")) {
			t.Error("SendDirect failed")
		}
	})
	w.Start()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("bus never delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || string(got[0].Payload) != "hello" || got[0].Src != 0 {
		t.Fatalf("delivery wrong: %+v", got)
	}
	st := b.Snapshot()
	if st.MsgsSent[ClassForeground] != 1 || st.MsgsDelivered[ClassForeground] != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestBusRoutesMultiHop(t *testing.T) {
	// Ring of 4: 0 -> 2 must store-and-forward through an intermediate.
	topo := Ring(4, 20_000_000, 50*sim.Microsecond)
	w, b := busFixture(t, topo, DefaultConfig())
	done := make(chan *Message, 1)
	b.Handle(2, func(m *Message) { done <- m })
	w.At(0, func() {
		if !b.Send(0, 2, ClassForeground, []byte("x")) {
			t.Error("Send failed")
		}
	})
	w.Start()
	select {
	case m := <-done:
		if m.Hops < 2 {
			t.Errorf("expected multi-hop delivery, got %d hops", m.Hops)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("multi-hop delivery never arrived")
	}
}

func TestBusDropsForDownNodes(t *testing.T) {
	topo := FullMesh(2, 20_000_000, 50*sim.Microsecond)
	w, b := busFixture(t, topo, DefaultConfig())
	delivered := make(chan struct{}, 1)
	b.Handle(1, func(m *Message) { delivered <- struct{}{} })
	sentinel := make(chan struct{})
	w.At(0, func() {
		b.SetDown(1, true)
		if b.SendDirect(0, 1, ClassForeground, []byte("x")) {
			// Accepted at the sender: the receiver drops on arrival.
			t.Log("send accepted; receiver-side drop expected")
		}
	})
	// The sentinel also repairs the node and checks IsDown, so the
	// assertion is synchronized with the select below rather than racing
	// the cleanup's Close.
	w.At(20*sim.Millisecond, func() {
		b.SetDown(1, false)
		if b.IsDown(1) {
			t.Error("IsDown after repair")
		}
		close(sentinel)
	})
	w.Start()
	select {
	case <-delivered:
		t.Fatal("down node received a message")
	case <-sentinel:
	case <-time.After(5 * time.Second):
		t.Fatal("sentinel never fired")
	}
}

func TestBusSerializationOrderPerLane(t *testing.T) {
	// Two frames down the same lane must arrive in send order (FIFO
	// shaping), even with zero propagation sorting to the same instant.
	topo := FullMesh(2, 1_000_000, 0)
	w, b := busFixture(t, topo, Config{EvidenceShare: 0.2})
	var mu sync.Mutex
	var order []byte
	done := make(chan struct{}, 16)
	b.Handle(1, func(m *Message) {
		mu.Lock()
		order = append(order, m.Payload[0])
		mu.Unlock()
		done <- struct{}{}
	})
	const frames = 8
	w.At(0, func() {
		for i := byte(0); i < frames; i++ {
			b.SendDirect(0, 1, ClassForeground, []byte{i})
		}
	})
	w.Start()
	for i := 0; i < frames; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d frames arrived", i, frames)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := byte(0); i < frames; i++ {
		if order[i] != i {
			t.Fatalf("lane reordered frames: %v", order)
		}
	}
}

func TestBusCloseIsIdempotentAndRefusesSends(t *testing.T) {
	topo := FullMesh(2, 20_000_000, 50*sim.Microsecond)
	w := sim.NewWallScheduler(1)
	b := NewBus(w, topo, DefaultConfig())
	w.Start()
	w.Close()
	b.Close()
	b.Close()
	if b.transmitAfterCloseAccepted() {
		t.Error("send accepted after Close")
	}
}

// transmitAfterCloseAccepted exercises the post-Close send guard without
// racing the executor (the scheduler is already closed here).
func (b *Bus) transmitAfterCloseAccepted() bool {
	return b.SendDirect(0, 1, ClassForeground, []byte("late"))
}
