package network

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"btr/internal/sim"
)

// busFixture boots a wall scheduler plus a live bus over topo and returns
// a cleanup that asserts leak-free shutdown.
func busFixture(t *testing.T, topo *Topology, cfg Config) (*sim.WallScheduler, *Bus) {
	t.Helper()
	before := runtime.NumGoroutine()
	w := sim.NewWallScheduler(1)
	b := NewBus(w, topo, cfg)
	t.Cleanup(func() {
		w.Close()
		b.Close()
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > before {
			t.Errorf("goroutine leak after bus shutdown: %d before, %d after", before, g)
		}
	})
	return w, b
}

func TestBusDeliversDirect(t *testing.T) {
	topo := FullMesh(3, 20_000_000, 50*sim.Microsecond)
	w, b := busFixture(t, topo, DefaultConfig())
	var mu sync.Mutex
	var got []*Message
	done := make(chan struct{}, 8)
	b.Handle(1, func(m *Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
		done <- struct{}{}
	})
	w.At(0, func() {
		if !b.SendDirect(0, 1, ClassForeground, []byte("hello")) {
			t.Error("SendDirect failed")
		}
	})
	w.Start()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("bus never delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || string(got[0].Payload) != "hello" || got[0].Src != 0 {
		t.Fatalf("delivery wrong: %+v", got)
	}
	st := b.Snapshot()
	if st.MsgsSent[ClassForeground] != 1 || st.MsgsDelivered[ClassForeground] != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestBusRoutesMultiHop(t *testing.T) {
	// Ring of 4: 0 -> 2 must store-and-forward through an intermediate.
	topo := Ring(4, 20_000_000, 50*sim.Microsecond)
	w, b := busFixture(t, topo, DefaultConfig())
	done := make(chan *Message, 1)
	b.Handle(2, func(m *Message) { done <- m })
	w.At(0, func() {
		if !b.Send(0, 2, ClassForeground, []byte("x")) {
			t.Error("Send failed")
		}
	})
	w.Start()
	select {
	case m := <-done:
		if m.Hops < 2 {
			t.Errorf("expected multi-hop delivery, got %d hops", m.Hops)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("multi-hop delivery never arrived")
	}
}

func TestBusDropsForDownNodes(t *testing.T) {
	topo := FullMesh(2, 20_000_000, 50*sim.Microsecond)
	w, b := busFixture(t, topo, DefaultConfig())
	delivered := make(chan struct{}, 1)
	b.Handle(1, func(m *Message) { delivered <- struct{}{} })
	sentinel := make(chan struct{})
	w.At(0, func() {
		b.SetDown(1, true)
		if b.SendDirect(0, 1, ClassForeground, []byte("x")) {
			// Accepted at the sender: the receiver drops on arrival.
			t.Log("send accepted; receiver-side drop expected")
		}
	})
	// The sentinel also repairs the node and checks IsDown, so the
	// assertion is synchronized with the select below rather than racing
	// the cleanup's Close.
	w.At(20*sim.Millisecond, func() {
		b.SetDown(1, false)
		if b.IsDown(1) {
			t.Error("IsDown after repair")
		}
		close(sentinel)
	})
	w.Start()
	select {
	case <-delivered:
		t.Fatal("down node received a message")
	case <-sentinel:
	case <-time.After(5 * time.Second):
		t.Fatal("sentinel never fired")
	}
}

func TestBusSerializationOrderPerLane(t *testing.T) {
	// Two frames down the same lane must arrive in send order (FIFO
	// shaping), even with zero propagation sorting to the same instant.
	topo := FullMesh(2, 1_000_000, 0)
	w, b := busFixture(t, topo, Config{EvidenceShare: 0.2})
	var mu sync.Mutex
	var order []byte
	done := make(chan struct{}, 16)
	b.Handle(1, func(m *Message) {
		mu.Lock()
		order = append(order, m.Payload[0])
		mu.Unlock()
		done <- struct{}{}
	})
	const frames = 8
	w.At(0, func() {
		for i := byte(0); i < frames; i++ {
			b.SendDirect(0, 1, ClassForeground, []byte{i})
		}
	})
	w.Start()
	for i := 0; i < frames; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d frames arrived", i, frames)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := byte(0); i < frames; i++ {
		if order[i] != i {
			t.Fatalf("lane reordered frames: %v", order)
		}
	}
}

func TestBusCloseIsIdempotentAndRefusesSends(t *testing.T) {
	topo := FullMesh(2, 20_000_000, 50*sim.Microsecond)
	w := sim.NewWallScheduler(1)
	b := NewBus(w, topo, DefaultConfig())
	w.Start()
	w.Close()
	b.Close()
	b.Close()
	if b.transmitAfterCloseAccepted() {
		t.Error("send accepted after Close")
	}
}

// transmitAfterCloseAccepted exercises the post-Close send guard without
// racing the executor (the scheduler is already closed here).
func (b *Bus) transmitAfterCloseAccepted() bool {
	return b.SendDirect(0, 1, ClassForeground, []byte("late"))
}

func TestBusSetWiringAddsAndRemovesLanes(t *testing.T) {
	// Universe: 4 slots; start wired as a line 0-1-2 (slot 3 dormant).
	const bw, prop = 20_000_000, 50 * sim.Microsecond
	line := NewTopology(4, []Link{{0, 1, bw, prop}, {1, 2, bw, prop}})
	w, b := busFixture(t, line, DefaultConfig())
	perLink := 2 * len(b.classes()) // two directions x classes
	if got := b.LaneCount(); got != 2*perLink {
		t.Fatalf("initial lanes = %d, want %d", got, 2*perLink)
	}
	// Join slot 3 (link 2-3) and drop slot 0's link: lane set follows.
	next := NewTopology(4, []Link{{1, 2, bw, prop}, {2, 3, bw, prop}})
	done := make(chan struct{})
	w.At(0, func() {
		b.SetWiring(next)
		if got := b.LaneCount(); got != 2*perLink {
			t.Errorf("lanes after rewire = %d, want %d", got, 2*perLink)
		}
		if b.SendDirect(0, 1, ClassForeground, []byte("x")) {
			t.Error("send over a removed link succeeded")
		}
		if !b.SendDirect(2, 3, ClassForeground, []byte("x")) {
			t.Error("send over an added link failed")
		}
	})
	b.Handle(3, func(m *Message) { close(done) })
	w.Start()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("delivery over the added lane never arrived")
	}
	// Tear down to a single link: lanes for removed links must be gone
	// (their workers exit; the fixture's leak check proves it).
	w.At(w.Now()+1, func() { b.SetWiring(NewTopology(4, []Link{{1, 2, bw, prop}})) })
	deadline := time.Now().Add(2 * time.Second)
	for b.LaneCount() != perLink && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := b.LaneCount(); got != perLink {
		t.Fatalf("lanes after teardown = %d, want %d", got, perLink)
	}
}

func TestNetworkSetWiring(t *testing.T) {
	k := sim.NewKernel(1)
	line := NewTopology(3, []Link{{0, 1, 20_000_000, 50}, {1, 2, 20_000_000, 50}})
	n := New(k, line, DefaultConfig())
	var got int
	n.Handle(2, func(m *Message) { got++ })
	k.At(0, func() {
		if !n.Send(0, 2, ClassForeground, []byte("via 1")) {
			t.Error("send over initial wiring failed")
		}
	})
	// Drop 1-2 and wire 0-2 directly: routing must follow.
	rewired := NewTopology(3, []Link{{0, 1, 20_000_000, 50}, {0, 2, 20_000_000, 50}})
	k.At(1000, func() {
		n.SetWiring(rewired)
		if !n.SendDirect(0, 2, ClassForeground, []byte("direct")) {
			t.Error("send over added link failed")
		}
		if n.SendDirect(1, 2, ClassForeground, []byte("gone")) {
			t.Error("send over removed link succeeded")
		}
	})
	k.Run(sim.Second)
	if got != 2 {
		t.Fatalf("delivered %d messages, want 2", got)
	}
}
