package network

import (
	"testing"

	"btr/internal/sim"
)

// testNet builds a kernel+network over the given topology with default
// config.
func testNet(t *testing.T, topo *Topology, cfg Config) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel(1)
	return k, New(k, topo, cfg)
}

func TestSendDirectDelivers(t *testing.T) {
	k, nw := testNet(t, Line(2, 1_000_000, sim.Millisecond), DefaultConfig())
	var got *Message
	nw.Handle(1, func(m *Message) { got = m })
	if !nw.SendDirect(0, 1, ClassForeground, []byte("hello")) {
		t.Fatal("SendDirect failed")
	}
	k.RunAll()
	if got == nil {
		t.Fatal("message not delivered")
	}
	if string(got.Payload) != "hello" {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.Src != 0 || got.Dst != 1 || got.Hops != 1 {
		t.Errorf("message metadata wrong: %+v", got)
	}
}

func TestSendDirectNonAdjacent(t *testing.T) {
	_, nw := testNet(t, Line(3, 1000, 0), DefaultConfig())
	if nw.SendDirect(0, 2, ClassForeground, nil) {
		t.Error("SendDirect succeeded between non-adjacent nodes")
	}
}

func TestLatencyModel(t *testing.T) {
	// 1000-byte payload + 32 header at 1 MB/s foreground share of a
	// 1.25 MB/s link (evidence share 0.2) = 1032us tx + 1ms prop.
	topo := Line(2, 1_250_000, sim.Millisecond)
	k, nw := testNet(t, topo, Config{EvidenceShare: 0.2})
	var at sim.Time
	nw.Handle(1, func(m *Message) { at = k.Now() })
	nw.SendDirect(0, 1, ClassForeground, make([]byte, 1000))
	k.RunAll()
	want := sim.Time(1032) + sim.Millisecond
	if at != want {
		t.Errorf("delivery at %v, want %v", at, want)
	}
}

func TestQueueingSerializes(t *testing.T) {
	// Two messages on the same directed channel serialize; the second's
	// arrival is one tx-time later.
	topo := Line(2, 1_000_000, 0)
	k, nw := testNet(t, topo, Config{EvidenceShare: 0})
	var arrivals []sim.Time
	nw.Handle(1, func(m *Message) { arrivals = append(arrivals, k.Now()) })
	nw.SendDirect(0, 1, ClassForeground, make([]byte, 968)) // 1000B on wire => 1ms
	nw.SendDirect(0, 1, ClassForeground, make([]byte, 968))
	k.RunAll()
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d, want 2", len(arrivals))
	}
	if arrivals[0] != sim.Millisecond || arrivals[1] != 2*sim.Millisecond {
		t.Errorf("arrivals = %v, want [1ms 2ms]", arrivals)
	}
}

func TestEvidenceClassIsolation(t *testing.T) {
	// Saturate the foreground channel; an evidence message must still go
	// through at its reserved share, unaffected by the backlog.
	topo := Line(2, 1_000_000, 0)
	k, nw := testNet(t, topo, Config{EvidenceShare: 0.2})
	var evidenceAt sim.Time
	nw.Handle(1, func(m *Message) {
		if m.Class == ClassEvidence {
			evidenceAt = k.Now()
		}
	})
	for i := 0; i < 50; i++ {
		nw.SendDirect(0, 1, ClassForeground, make([]byte, 10000))
	}
	nw.SendDirect(0, 1, ClassEvidence, make([]byte, 168)) // 200B at 200kB/s => 1ms
	k.RunAll()
	if evidenceAt != sim.Millisecond {
		t.Errorf("evidence delivered at %v despite reservation, want 1ms", evidenceAt)
	}
}

func TestNoIsolationWithoutReservation(t *testing.T) {
	// With EvidenceShare=0 everything shares one channel: backlog delays
	// evidence. This is the E6 ablation's mechanism.
	topo := Line(2, 1_000_000, 0)
	k, nw := testNet(t, topo, Config{EvidenceShare: 0})
	var evidenceAt sim.Time
	nw.Handle(1, func(m *Message) {
		if m.Class == ClassEvidence {
			evidenceAt = k.Now()
		}
	})
	for i := 0; i < 10; i++ {
		nw.SendDirect(0, 1, ClassForeground, make([]byte, 9968)) // 10ms each
	}
	nw.SendDirect(0, 1, ClassEvidence, make([]byte, 68))
	k.RunAll()
	if evidenceAt <= 100*sim.Millisecond {
		t.Errorf("evidence at %v; expected to queue behind ~100ms backlog", evidenceAt)
	}
}

func TestMultiHopRouting(t *testing.T) {
	topo := Line(4, 1_000_000, sim.Millisecond)
	k, nw := testNet(t, topo, DefaultConfig())
	var got *Message
	nw.Handle(3, func(m *Message) { got = m })
	if !nw.Send(0, 3, ClassForeground, []byte("x")) {
		t.Fatal("Send failed")
	}
	k.RunAll()
	if got == nil {
		t.Fatal("multi-hop message not delivered")
	}
	if got.Hops != 3 {
		t.Errorf("hops = %d, want 3", got.Hops)
	}
}

func TestCrashedDestinationDrops(t *testing.T) {
	k, nw := testNet(t, Line(2, 1000, 0), DefaultConfig())
	delivered := false
	nw.Handle(1, func(m *Message) { delivered = true })
	nw.SetDown(1, true)
	nw.SendDirect(0, 1, ClassForeground, nil)
	k.RunAll()
	if delivered {
		t.Error("crashed node received a message")
	}
	if nw.Stats.MsgsDropped[ClassForeground] != 1 {
		t.Errorf("dropped = %d, want 1", nw.Stats.MsgsDropped[ClassForeground])
	}
}

func TestCrashedSenderCannotSend(t *testing.T) {
	k, nw := testNet(t, Line(2, 1000, 0), DefaultConfig())
	nw.SetDown(0, true)
	if nw.SendDirect(0, 1, ClassForeground, nil) {
		t.Error("crashed node sent a message")
	}
	k.RunAll()
}

func TestForwardingAvoidsDownIntermediate(t *testing.T) {
	// Ring 0-1-2-3-4: route 0->2 normally via 1; crash 1 after the message
	// is in flight to it — drop. But a fresh send reroutes 0->4->3->2.
	topo := Ring(5, 1_000_000, 0)
	k, nw := testNet(t, topo, DefaultConfig())
	var got *Message
	nw.Handle(2, func(m *Message) { got = m })
	nw.SetDown(1, true)
	// Static path 0->1->2 is chosen at send time; the first hop goes to 1,
	// which is down, so it drops. Senders route around *known* down nodes
	// only at forwarding time; test the forward-reroute by sending from 4.
	nw.Send(4, 2, ClassForeground, []byte("via 3"))
	k.RunAll()
	if got == nil {
		t.Fatal("message not delivered around down node")
	}
}

func TestByzantineForwardFilterDrop(t *testing.T) {
	topo := Line(3, 1_000_000, 0)
	k, nw := testNet(t, topo, DefaultConfig())
	delivered := false
	nw.Handle(2, func(m *Message) { delivered = true })
	nw.SetForwardFilter(1, func(m *Message) (*Message, sim.Time, bool) {
		return nil, 0, false // drop everything
	})
	nw.Send(0, 2, ClassForeground, []byte("x"))
	k.RunAll()
	if delivered {
		t.Error("dropped message was delivered")
	}
}

func TestByzantineForwardFilterDelay(t *testing.T) {
	topo := Line(3, 1_000_000, 0)
	k, nw := testNet(t, topo, DefaultConfig())
	var at sim.Time
	nw.Handle(2, func(m *Message) { at = k.Now() })
	nw.SetForwardFilter(1, func(m *Message) (*Message, sim.Time, bool) {
		return m, 50 * sim.Millisecond, true
	})
	nw.Send(0, 2, ClassForeground, []byte("x"))
	k.RunAll()
	if at < 50*sim.Millisecond {
		t.Errorf("delayed message arrived at %v, want >= 50ms", at)
	}
}

func TestLossModel(t *testing.T) {
	topo := Line(2, 1_000_000, 0)
	k := sim.NewKernel(7)
	nw := New(k, topo, Config{LossProb: 0.5})
	delivered := 0
	nw.Handle(1, func(m *Message) { delivered++ })
	const sent = 1000
	for i := 0; i < sent; i++ {
		nw.SendDirect(0, 1, ClassForeground, []byte{1})
	}
	k.RunAll()
	if delivered < sent/3 || delivered > 2*sent/3 {
		t.Errorf("delivered %d of %d at 50%% loss", delivered, sent)
	}
}

func TestStatsAccounting(t *testing.T) {
	topo := Line(2, 1_000_000, 0)
	k, nw := testNet(t, topo, DefaultConfig())
	nw.Handle(1, func(m *Message) {})
	nw.SendDirect(0, 1, ClassForeground, make([]byte, 100))
	nw.SendDirect(0, 1, ClassEvidence, make([]byte, 50))
	k.RunAll()
	if nw.Stats.MsgsSent[ClassForeground] != 1 || nw.Stats.MsgsSent[ClassEvidence] != 1 {
		t.Errorf("sent stats wrong: %+v", nw.Stats.MsgsSent)
	}
	if nw.Stats.BytesSent[ClassForeground] != 132 {
		t.Errorf("foreground bytes = %d, want 132", nw.Stats.BytesSent[ClassForeground])
	}
	if nw.Stats.MsgsDelivered[ClassForeground] != 1 {
		t.Errorf("delivered stats wrong")
	}
}

func TestWorstCaseOneHopMonotonic(t *testing.T) {
	topo := Line(2, 1_000_000, sim.Millisecond)
	_, nw := testNet(t, topo, DefaultConfig())
	a := nw.WorstCaseOneHop(100, ClassEvidence, 0, 0)
	b := nw.WorstCaseOneHop(100, ClassEvidence, 5, 200)
	if b <= a {
		t.Errorf("backlog did not increase bound: %v vs %v", a, b)
	}
	if a <= sim.Millisecond {
		t.Errorf("bound %v should exceed propagation alone", a)
	}
}

func TestClassString(t *testing.T) {
	if ClassForeground.String() != "foreground" || ClassEvidence.String() != "evidence" {
		t.Error("Class.String wrong")
	}
}

func BenchmarkNetworkOneHop(b *testing.B) {
	topo := Line(2, 1_000_000_000, 0)
	k := sim.NewKernel(1)
	nw := New(k, topo, DefaultConfig())
	nw.Handle(1, func(m *Message) {})
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nw.SendDirect(0, 1, ClassForeground, payload)
		k.RunAll()
	}
}
