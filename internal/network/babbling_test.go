package network

import (
	"testing"

	"btr/internal/sim"
)

// The babbling-idiot countermeasure (§2.1): "the bandwidth of each link is
// statically allocated between the nodes … the MAC is often implemented in
// hardware and thus can enforce bandwidth allocations even if nodes are
// corrupted." In this model each directed channel serializes its own
// sender's traffic, so a babbling node can only saturate its own outgoing
// channels — traffic between other node pairs is untouched.

func TestBabblerCannotDelayThirdPartyTraffic(t *testing.T) {
	topo := FullMesh(3, 1_000_000, 0)
	k := sim.NewKernel(1)
	nw := New(k, topo, Config{EvidenceShare: 0.2})
	var victimArrival sim.Time
	nw.Handle(2, func(m *Message) {
		if m.Src == 1 {
			victimArrival = k.Now()
		}
	})
	// Node 0 babbles 1000 large messages at node 2.
	for i := 0; i < 1000; i++ {
		nw.SendDirect(0, 2, ClassForeground, make([]byte, 10_000))
	}
	// Node 1's message to node 2 uses the separate 1->2 channel.
	nw.SendDirect(1, 2, ClassForeground, make([]byte, 968))
	k.RunAll()
	// 1000B at the 800kB/s foreground share = 1.25ms, unaffected by the
	// babbler's backlog.
	want := sim.Time(1250)
	if victimArrival != want {
		t.Errorf("victim arrival %v, want %v (babbler interfered)", victimArrival, want)
	}
}

func TestBabblerCannotStarveEvidenceChannel(t *testing.T) {
	topo := Line(2, 1_000_000, 0)
	k := sim.NewKernel(2)
	nw := New(k, topo, Config{EvidenceShare: 0.2})
	var evAt sim.Time
	nw.Handle(1, func(m *Message) {
		if m.Class == ClassEvidence {
			evAt = k.Now()
		}
	})
	// Saturate the foreground direction 0->1 with its own traffic...
	for i := 0; i < 500; i++ {
		nw.SendDirect(0, 1, ClassForeground, make([]byte, 10_000))
	}
	// ...the evidence class still delivers on its reserved share.
	nw.SendDirect(0, 1, ClassEvidence, make([]byte, 168)) // 200B @ 200kB/s = 1ms
	k.RunAll()
	if evAt != sim.Millisecond {
		t.Errorf("evidence at %v despite reservation, want 1ms", evAt)
	}
}

func TestBabblerOnlyHurtsItself(t *testing.T) {
	// A babbling sender's own later (legitimate) message queues behind
	// its babble — the cost lands on the babbler.
	topo := Line(2, 1_000_000, 0)
	k := sim.NewKernel(3)
	nw := New(k, topo, Config{EvidenceShare: 0})
	var lastArrival sim.Time
	nw.Handle(1, func(m *Message) { lastArrival = k.Now() })
	for i := 0; i < 100; i++ {
		nw.SendDirect(0, 1, ClassForeground, make([]byte, 9968)) // 10ms each
	}
	nw.SendDirect(0, 1, ClassForeground, []byte("legit"))
	k.RunAll()
	if lastArrival < sim.Second {
		t.Errorf("babbler's own message arrived at %v; should queue behind ~1s of babble", lastArrival)
	}
}
