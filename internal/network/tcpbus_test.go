package network

import (
	"encoding/binary"
	"errors"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"btr/internal/sim"
	"btr/internal/wire"
)

// tcpCluster boots one TCPBus + WallScheduler per node slot of topo on
// loopback (dynamic ports), the in-test analogue of an n-process
// deployment: the instances share no state except the sockets. Cleanup
// asserts leak-free shutdown.
func tcpCluster(t *testing.T, topo *Topology, cfg func(TCPConfig) TCPConfig) ([]*sim.WallScheduler, []*TCPBus) {
	t.Helper()
	before := runtime.NumGoroutine()
	liss := make([]net.Listener, topo.N)
	addrs := make([]string, topo.N)
	for i := range liss {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		liss[i] = lis
		addrs[i] = lis.Addr().String()
	}
	scheds := make([]*sim.WallScheduler, topo.N)
	buses := make([]*TCPBus, topo.N)
	c := DefaultTCPConfig(0xbeef)
	if cfg != nil {
		c = cfg(c)
	}
	for i := range buses {
		scheds[i] = sim.NewWallScheduler(uint64(i + 1))
		buses[i] = NewTCPBus(scheds[i], topo, NodeID(i), addrs, liss[i], c)
	}
	t.Cleanup(func() {
		for _, w := range scheds {
			w.Close()
		}
		for _, b := range buses {
			b.Close()
		}
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > before {
			t.Errorf("goroutine leak after tcpbus shutdown: %d before, %d after", before, g)
		}
	})
	return scheds, buses
}

func TestTCPBusDeliversDirect(t *testing.T) {
	topo := FullMesh(3, 20_000_000, 50*sim.Microsecond)
	scheds, buses := tcpCluster(t, topo, nil)
	var mu sync.Mutex
	var got []*Message
	done := make(chan struct{}, 8)
	buses[1].Handle(1, func(m *Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
		done <- struct{}{}
	})
	scheds[0].At(0, func() {
		if !buses[0].SendDirect(0, 1, ClassForeground, []byte("hello")) {
			t.Error("SendDirect failed")
		}
	})
	for _, w := range scheds {
		w.Start()
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("tcpbus never delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || string(got[0].Payload) != "hello" || got[0].Src != 0 || got[0].From != 0 {
		t.Fatalf("delivery wrong: %+v", got[0])
	}
	if st := buses[0].Snapshot(); st.MsgsSent[ClassForeground] != 1 {
		t.Errorf("sender stats wrong: %+v", st)
	}
	if st := buses[1].Snapshot(); st.MsgsDelivered[ClassForeground] != 1 {
		t.Errorf("receiver stats wrong: %+v", st)
	}
}

func TestTCPBusRoutesMultiHop(t *testing.T) {
	// Ring of 4: 0 -> 2 must store-and-forward through a neighbor's
	// process (its bus re-transmits on its own outgoing link).
	topo := Ring(4, 20_000_000, 50*sim.Microsecond)
	scheds, buses := tcpCluster(t, topo, nil)
	done := make(chan *Message, 1)
	buses[2].Handle(2, func(m *Message) { done <- m })
	scheds[0].At(0, func() {
		if !buses[0].Send(0, 2, ClassEvidence, []byte("multi")) {
			t.Error("Send failed")
		}
	})
	for _, w := range scheds {
		w.Start()
	}
	select {
	case m := <-done:
		if m.Hops != 2 || string(m.Payload) != "multi" || m.Src != 0 {
			t.Fatalf("delivery wrong: %+v", m)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("multi-hop delivery never arrived")
	}
}

// TestTCPBusReconnectsAfterSever proves the supervised-reconnect path: a
// userspace partition severs both directions; healing it brings the
// connection back (Reconnects advances) and traffic flows again.
func TestTCPBusReconnectsAfterSever(t *testing.T) {
	topo := FullMesh(2, 20_000_000, 50*sim.Microsecond)
	scheds, buses := tcpCluster(t, topo, nil)
	var mu sync.Mutex
	var got []string
	buses[1].Handle(1, func(m *Message) {
		mu.Lock()
		got = append(got, string(m.Payload))
		mu.Unlock()
	})
	for _, w := range scheds {
		w.Start()
	}
	send := func(s string) {
		done := make(chan bool, 1)
		scheds[0].At(scheds[0].Now(), func() {
			done <- buses[0].SendDirect(0, 1, ClassForeground, []byte(s))
		})
		<-done
	}
	waitFor := func(s string) {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			for _, g := range got {
				if g == s {
					mu.Unlock()
					return
				}
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("%q never delivered", s)
	}
	send("before")
	waitFor("before")

	// Partition at the receiver: it closes inbound conns and refuses new
	// ones, so node 0's supervisor enters its redial loop.
	buses[1].SetPeerRefused(0, true)
	deadline := time.Now().Add(5 * time.Second)
	for buses[0].ConnectedCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if buses[0].ConnectedCount() != 0 {
		t.Fatal("partition did not sever node 0's outgoing connection")
	}

	buses[1].SetPeerRefused(0, false)
	deadline = time.Now().Add(10 * time.Second)
	for buses[0].ConnectedCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	send("after")
	waitFor("after")
	for _, ls := range buses[0].LinkStats() {
		if ls.Peer == 1 && ls.Reconnects < 1 {
			t.Errorf("expected >=1 reconnect to peer 1: %+v", ls)
		}
	}
}

// TestTCPBusBoundedQueueDrops pins drop accounting: with no server to
// drain the link, a tiny queue overflows and the overflow is counted
// both globally and per link.
func TestTCPBusBoundedQueueDrops(t *testing.T) {
	topo := FullMesh(2, 20_000_000, 50*sim.Microsecond)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	// addrs[1] points at a port nothing listens on, so the supervisor
	// can never connect and the queue never drains.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	w := sim.NewWallScheduler(1)
	cfg := DefaultTCPConfig(1)
	cfg.QueueDepth = 2
	b := NewTCPBus(w, topo, 0, []string{lis.Addr().String(), deadAddr}, lis, cfg)
	defer func() {
		w.Close()
		b.Close()
	}()
	w.Start()
	done := make(chan int, 1)
	w.At(0, func() {
		sent := 0
		for i := 0; i < 10; i++ {
			if b.SendDirect(0, 1, ClassForeground, []byte("x")) {
				sent++
			}
		}
		done <- sent
	})
	sent := <-done
	if sent != 2 {
		t.Fatalf("sent = %d, want 2 (queue depth)", sent)
	}
	st := b.Snapshot()
	if st.MsgsDropped[ClassForeground] != 8 {
		t.Errorf("dropped = %d, want 8", st.MsgsDropped[ClassForeground])
	}
	var drops uint64
	for _, ls := range b.LinkStats() {
		drops += ls.Drops
	}
	if drops != 8 {
		t.Errorf("per-link drops = %d, want 8", drops)
	}
}

// TestTCPBusRejectsForeignHello proves handshake validation: a raw
// connection speaking the wrong cluster tag (or garbage) is closed
// without ever reaching a handler.
func TestTCPBusRejectsForeignHello(t *testing.T) {
	topo := FullMesh(2, 20_000_000, 50*sim.Microsecond)
	scheds, buses := tcpCluster(t, topo, nil)
	delivered := make(chan struct{}, 1)
	buses[0].Handle(0, func(m *Message) { delivered <- struct{}{} })
	for _, w := range scheds {
		w.Start()
	}
	addr := buses[0].addrs[0]
	for _, raw := range [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		binary.LittleEndian.AppendUint32(nil, 0), // zero-length frame
	} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		conn.Write(raw)
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(buf); err == nil {
			t.Error("expected connection to be closed")
		}
		conn.Close()
	}
	select {
	case <-delivered:
		t.Fatal("garbage connection reached a handler")
	case <-time.After(50 * time.Millisecond):
	}
}

// soloTCPBus boots one TCPBus for node 0 of a 2-slot topology whose peer
// address is dead (a reserved-then-closed port), so inbound connections
// come only from the test's raw dials.
func soloTCPBus(t *testing.T, cluster uint64) (*sim.WallScheduler, *TCPBus, string) {
	t.Helper()
	topo := FullMesh(2, 20_000_000, 50*sim.Microsecond)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	w := sim.NewWallScheduler(1)
	b := NewTCPBus(w, topo, 0, []string{lis.Addr().String(), deadAddr}, lis, DefaultTCPConfig(cluster))
	t.Cleanup(func() {
		w.Close()
		b.Close()
	})
	return w, b, lis.Addr().String()
}

// TestTCPBusRejectsMalformedMsgFields is the Byzantine-frame regression:
// a peer holding the cluster tag sends msg frames whose class or node-ID
// fields are outside the deployment's ranges. Each must sever the
// connection — never index a fixed-size stats or queue array — and a
// well-formed frame on a fresh connection still delivers, proving the
// rejections are the validation firing rather than harness breakage.
func TestTCPBusRejectsMalformedMsgFields(t *testing.T) {
	const cluster = 0xbeef
	w, b, addr := soloTCPBus(t, cluster)
	delivered := make(chan *Message, 8)
	b.Handle(0, func(m *Message) { delivered <- m })
	w.Start()

	hello := wire.AppendHello(nil, wire.Hello{Cluster: cluster, Node: 1})
	sendFrame := func(wm wire.Msg) net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		frame, err := wire.AppendMsg(append([]byte(nil), hello...), wm)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("write: %v", err)
		}
		return conn
	}
	for name, wm := range map[string]wire.Msg{
		"class out of range": {Class: 7, Src: 1, Dst: 0, From: 1, To: 0},
		"src out of range":   {Class: uint8(ClassForeground), Src: 9, Dst: 0, From: 1, To: 0},
		"dst out of range":   {Class: uint8(ClassForeground), Src: 1, Dst: 9, From: 1, To: 0},
		"from out of range":  {Class: uint8(ClassForeground), Src: 1, Dst: 0, From: 9, To: 0},
		"to out of range":    {Class: uint8(ClassForeground), Src: 1, Dst: 0, From: 1, To: 9},
	} {
		conn := sendFrame(wm)
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(buf); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("%s: connection not severed (read err %v)", name, err)
		}
		conn.Close()
	}
	select {
	case m := <-delivered:
		t.Fatalf("malformed frame reached a handler: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
	conn := sendFrame(wire.Msg{Class: uint8(ClassForeground), Src: 1, Dst: 0, From: 1, To: 0, Payload: []byte("ok")})
	defer conn.Close()
	select {
	case m := <-delivered:
		if string(m.Payload) != "ok" {
			t.Fatalf("control delivery wrong: %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("well-formed control frame never delivered")
	}
}

// TestTCPBusInboundCloseOnReplace pins the reconnect-ordering guard: a
// second connection Hello-ing as the same peer supersedes the first,
// which must be closed rather than left draining kernel buffers behind
// its replacement (the FIFO-across-reconnect hazard).
func TestTCPBusInboundCloseOnReplace(t *testing.T) {
	const cluster = 0xbeef
	w, b, addr := soloTCPBus(t, cluster)
	delivered := make(chan *Message, 2)
	b.Handle(0, func(m *Message) { delivered <- m })
	w.Start()

	hello := wire.AppendHello(nil, wire.Hello{Cluster: cluster, Node: 1})
	send := func(payload string) net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		frame, err := wire.AppendMsg(append([]byte(nil), hello...), wire.Msg{
			Class: uint8(ClassForeground), Src: 1, Dst: 0, From: 1, To: 0, Payload: []byte(payload),
		})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("write: %v", err)
		}
		select {
		case m := <-delivered:
			if string(m.Payload) != payload {
				t.Fatalf("delivery wrong: %+v", m)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%q never delivered", payload)
		}
		return conn
	}
	c1 := send("one")
	defer c1.Close()
	c2 := send("two") // registering c2 must close c1
	defer c2.Close()
	buf := make([]byte, 1)
	c1.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c1.Read(buf); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("superseded inbound connection was not closed (read err %v)", err)
	}
}

// TestTCPBusSetWiringConverges is the connection-count analogue of the
// Bus lane-convergence test: wiring changes open and close real link
// supervisors.
func TestTCPBusSetWiringConverges(t *testing.T) {
	full := FullMesh(4, 20_000_000, 50*sim.Microsecond)
	ring := Ring(4, 20_000_000, 50*sim.Microsecond)
	scheds, buses := tcpCluster(t, full, nil)
	for _, w := range scheds {
		w.Start()
	}
	if got := buses[0].LinkCount(); got != 3 {
		t.Fatalf("full-mesh LinkCount = %d, want 3", got)
	}
	for _, b := range buses {
		b.SetWiring(ring)
	}
	if got := buses[0].LinkCount(); got != 2 {
		t.Fatalf("ring LinkCount = %d, want 2", got)
	}
	for _, b := range buses {
		b.SetWiring(full)
	}
	if got := buses[0].LinkCount(); got != 3 {
		t.Fatalf("restored LinkCount = %d, want 3", got)
	}
}

// transportFIFOCheck sends seq-stamped messages 0..n-1 on one (link,
// class) channel and asserts arrival order at the destination handler.
func seqPayload(i int) []byte {
	return binary.LittleEndian.AppendUint32(nil, uint32(i))
}

// TestTransportFIFOPerLink asserts the Transport ordering contract — two
// messages transmitted on the same directed link in the same class are
// delivered in transmission order — on all three implementations.
func TestTransportFIFOPerLink(t *testing.T) {
	const n = 200
	topo := func() *Topology { return FullMesh(2, 20_000_000, 50*sim.Microsecond) }

	check := func(t *testing.T, got []uint32) {
		t.Helper()
		if len(got) != n {
			t.Fatalf("delivered %d of %d", len(got), n)
		}
		for i, s := range got {
			if int(s) != i {
				t.Fatalf("position %d got seq %d: FIFO violated", i, s)
			}
		}
	}

	t.Run("network", func(t *testing.T) {
		k := sim.NewKernel(1)
		nw := New(k, topo(), DefaultConfig())
		var got []uint32
		nw.Handle(1, func(m *Message) { got = append(got, binary.LittleEndian.Uint32(m.Payload)) })
		k.At(0, func() {
			for i := 0; i < n; i++ {
				nw.SendDirect(0, 1, ClassForeground, seqPayload(i))
			}
		})
		k.RunAll()
		check(t, got)
	})

	t.Run("bus", func(t *testing.T) {
		w, b := busFixture(t, topo(), DefaultConfig())
		var mu sync.Mutex
		var got []uint32
		done := make(chan struct{}, 1)
		b.Handle(1, func(m *Message) {
			mu.Lock()
			got = append(got, binary.LittleEndian.Uint32(m.Payload))
			if len(got) == n {
				done <- struct{}{}
			}
			mu.Unlock()
		})
		w.At(0, func() {
			for i := 0; i < n; i++ {
				if !b.SendDirect(0, 1, ClassForeground, seqPayload(i)) {
					t.Errorf("send %d failed", i)
				}
			}
		})
		w.Start()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("bus FIFO deliveries incomplete")
		}
		mu.Lock()
		defer mu.Unlock()
		check(t, got)
	})

	t.Run("tcpbus", func(t *testing.T) {
		scheds, buses := tcpCluster(t, topo(), nil)
		var mu sync.Mutex
		var got []uint32
		done := make(chan struct{}, 1)
		buses[1].Handle(1, func(m *Message) {
			mu.Lock()
			got = append(got, binary.LittleEndian.Uint32(m.Payload))
			if len(got) == n {
				done <- struct{}{}
			}
			mu.Unlock()
		})
		for _, w := range scheds {
			w.Start()
		}
		// Wait for the link so none of the sequence is dropped pre-connect.
		deadline := time.Now().Add(10 * time.Second)
		for buses[0].ConnectedCount() == 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		scheds[0].At(scheds[0].Now(), func() {
			for i := 0; i < n; i++ {
				if !buses[0].SendDirect(0, 1, ClassForeground, seqPayload(i)) {
					t.Errorf("send %d failed", i)
				}
			}
		})
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("tcpbus FIFO deliveries incomplete")
		}
		mu.Lock()
		defer mu.Unlock()
		check(t, got)
	})
}

// TestBusSetWiringRaceStress swaps wiring from a non-scheduler goroutine
// while deliveries are in flight — the -race stress the locked control
// plane must survive — then asserts lane convergence and (via the
// fixture) leak-free shutdown.
func TestBusSetWiringRaceStress(t *testing.T) {
	full := FullMesh(4, 20_000_000, 50*sim.Microsecond)
	ring := Ring(4, 20_000_000, 50*sim.Microsecond)
	w, b := busFixture(t, full, DefaultConfig())
	var delivered sync.WaitGroup
	for i := 0; i < 4; i++ {
		b.Handle(NodeID(i), func(m *Message) {})
	}
	stop := make(chan struct{})
	var tick func()
	tick = func() {
		select {
		case <-stop:
			return
		default:
		}
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				if src != dst {
					b.Send(NodeID(src), NodeID(dst), ClassForeground, []byte("x"))
					b.SetDown(NodeID(src), false) // control-plane churn from callbacks too
				}
			}
		}
		w.After(200*sim.Microsecond, tick)
	}
	w.At(0, tick)
	w.Start()
	delivered.Add(1)
	go func() {
		defer delivered.Done()
		topos := []*Topology{ring, full}
		for i := 0; i < 60; i++ {
			b.SetWiring(topos[i%2])
			b.SetForwardFilter(NodeID(i%4), nil)
			b.IsDown(NodeID(i % 4))
			time.Sleep(time.Millisecond)
		}
		b.SetWiring(full)
	}()
	delivered.Wait()
	close(stop)
	// Full mesh of 4: 6 links x 2 directions x 2 classes = 24 lanes.
	deadline := time.Now().Add(5 * time.Second)
	for b.LaneCount() != 24 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := b.LaneCount(); got != 24 {
		t.Fatalf("LaneCount = %d after churn, want 24", got)
	}
}

// TestTCPBusSetWiringRaceStress is the same stress on real sockets:
// wiring flaps from another goroutine while every node keeps sending;
// afterwards the supervisor set must converge to the final wiring and
// shutdown must not leak (fixture cleanup).
func TestTCPBusSetWiringRaceStress(t *testing.T) {
	full := FullMesh(4, 20_000_000, 50*sim.Microsecond)
	ring := Ring(4, 20_000_000, 50*sim.Microsecond)
	scheds, buses := tcpCluster(t, full, nil)
	for i, b := range buses {
		b.Handle(NodeID(i), func(m *Message) {})
	}
	stop := make(chan struct{})
	for i := range scheds {
		i := i
		var tick func()
		tick = func() {
			select {
			case <-stop:
				return
			default:
			}
			for dst := 0; dst < 4; dst++ {
				if dst != i {
					buses[i].Send(NodeID(i), NodeID(dst), ClassForeground, []byte("x"))
				}
			}
			scheds[i].After(500*sim.Microsecond, tick)
		}
		scheds[i].At(0, tick)
		scheds[i].Start()
	}
	var churn sync.WaitGroup
	for _, b := range buses {
		b := b
		churn.Add(1)
		go func() {
			defer churn.Done()
			topos := []*Topology{ring, full}
			for i := 0; i < 40; i++ {
				b.SetWiring(topos[i%2])
				time.Sleep(time.Millisecond)
			}
			b.SetWiring(full)
		}()
	}
	churn.Wait()
	close(stop)
	for i, b := range buses {
		if got := b.LinkCount(); got != 3 {
			t.Errorf("node %d LinkCount = %d after churn, want 3", i, got)
		}
	}
	// Connections re-establish after the final wiring settles.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, b := range buses {
			if b.ConnectedCount() != 3 {
				all = false
			}
		}
		if all {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, b := range buses {
		if got := b.ConnectedCount(); got != 3 {
			t.Errorf("node %d ConnectedCount = %d, want 3 (stats: %+v)", i, got, b.LinkStats())
		}
	}
}

// TestTCPBusCloseIsIdempotent mirrors the Bus shutdown contract.
func TestTCPBusCloseIsIdempotent(t *testing.T) {
	topo := FullMesh(2, 20_000_000, 50*sim.Microsecond)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	w := sim.NewWallScheduler(1)
	defer w.Close()
	b := NewTCPBus(w, topo, 0, []string{lis.Addr().String(), "127.0.0.1:1"}, lis, DefaultTCPConfig(1))
	b.Close()
	b.Close()
	w.Start()
	done := make(chan bool, 1)
	w.At(0, func() { done <- b.SendDirect(0, 1, ClassForeground, []byte("x")) })
	if <-done {
		t.Error("send accepted after Close")
	}
}
