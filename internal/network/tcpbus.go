package network

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"btr/internal/sim"
	"btr/internal/wire"
)

// TCPBus is the real-socket transport: the third Transport
// implementation, used by multi-process deployments where each node is
// its own OS process (cmd/btrlive -node). It carries exactly the traffic
// the in-process transports carry, framed by internal/wire, over real
// TCP connections — so within-R verdicts measured on it cross real
// kernels, NICs (loopback or otherwise), and process boundaries.
//
// Each process hosts one TCPBus for its own node slot ("self"). The
// instance still implements the full Transport surface: Send routes
// multi-hop traffic with store-and-forward at self, handlers for other
// slots are simply never invoked locally.
//
// Connection model — directed, mirroring Bus's directed lanes: for every
// peer adjacent to self in the active wiring, a link supervisor
// goroutine owns the OUTGOING connection (dial with exponential backoff,
// wire.Hello handshake, then a coalescing write loop draining a bounded
// per-class backlog with evidence priority — the reserved-share
// analogue — into batch frames, one write per wakeup, plus a heartbeat
// ticker for idle gaps). A full backlog sheds class-aware rather than
// tail-dropping silently: heartbeats are never queued, foreground
// tail-drops at its QueueDepth share, and evidence evicts the oldest
// queued foreground (then oldest evidence) — heartbeats shed first,
// evidence last, every shed surfaced in Stats.MsgsShed and per-link
// counters. INCOMING traffic arrives on connections peers dialed; the
// accept loop validates the Hello (magic, version, cluster tag,
// adjacency) and a per-connection reader hands message and batch frames
// back to the scheduler, so handlers run serialized with all other
// runtime callbacks — the Transport contract.
//
// Reconnect state machine (per outgoing link):
//
//	IDLE --dial ok, hello sent--> CONNECTED --write/deadline error--> BACKOFF
//	BACKOFF --sleep (exponential, DialMin..DialMax)--> IDLE
//	any --SetWiring drops link / Close--> GONE (goroutine exits)
//	any --partitioned--> REFUSED (idle poll until healed)
//
// Liveness: every frame (or heartbeat) refreshes the read deadline on
// inbound connections and the write deadline bounds outbound stalls, so
// a peer that is SIGKILLed, SIGSTOPped, or partitioned is detected
// within cfg.Liveness and the supervisor starts redialing — supervised
// reconnect is what lets a killed-and-restarted node rejoin.
//
// Userspace partitioning (SetPeerRefused) severs a peer without iptables:
// existing connections both ways are closed, inbound Hellos from the
// peer are refused, and the outgoing supervisor idles until healed.
//
// Concurrency: same contract as Bus — Send/SendDirect from scheduler
// callbacks; control plane (Handle, SetDown, IsDown, SetForwardFilter,
// SetWiring, Topology) locked and safe from any goroutine; Snapshot,
// LinkCount, ConnectedCount, LinkStats safe from any goroutine. Close
// joins every supervisor, reader, and the accept loop.
type TCPBus struct {
	sched sim.Scheduler
	cfg   TCPConfig
	self  NodeID
	addrs []string
	lis   net.Listener

	// stateMu guards the control plane, exactly as on Bus.
	stateMu  sync.RWMutex
	topo     *Topology
	handlers []Handler
	filters  []ForwardFilter
	down     []bool
	// pv, when non-nil, is handed coalesced inbound evidence batches on
	// connection reader goroutines before delivery (see PreVerifier).
	pv PreVerifier

	// mu guards the link plane: outgoing supervisors, registered inbound
	// connections (latest per peer — a new Hello supersedes and closes
	// the old connection), the partition set, and closed.
	mu      sync.Mutex
	links   map[NodeID]*tcpLink
	inbound map[NodeID]net.Conn
	refused map[NodeID]bool
	closed  bool

	nextID uint64
	rng    *sim.RNG

	statsMu sync.Mutex
	stats   Stats

	wg sync.WaitGroup
}

// TCPConfig tunes the real-socket transport.
type TCPConfig struct {
	Config // EvidenceShare>0 keeps evidence on its own priority queue; LossProb is applied at delivery

	// Cluster is the deployment tag carried in every Hello (derive it
	// from the seed); connections from another cluster are refused.
	Cluster uint64
	// QueueDepth bounds each link's foreground send backlog (evidence may
	// borrow up to one extra QueueDepth on top); a full backlog sheds by
	// class policy (counted in Snapshot MsgsShed/MsgsDropped and per-link
	// Drops/Shed).
	QueueDepth int
	// DialMin / DialMax bound the exponential redial backoff.
	DialMin, DialMax time.Duration
	// Heartbeat is the idle keepalive interval on outgoing connections.
	Heartbeat time.Duration
	// Liveness is the read/write deadline: a connection silent (or
	// stalled) this long is declared dead and redialed.
	Liveness time.Duration
}

// DefaultTCPConfig returns timings suited to loopback deployments with
// period-scale (hundreds of ms) recovery bounds.
func DefaultTCPConfig(cluster uint64) TCPConfig {
	return TCPConfig{
		Config:     DefaultConfig(),
		Cluster:    cluster,
		QueueDepth: 1024,
		DialMin:    5 * time.Millisecond,
		DialMax:    250 * time.Millisecond,
		Heartbeat:  25 * time.Millisecond,
		Liveness:   200 * time.Millisecond,
	}
}

// tcpLink is one outgoing link supervisor's shared state. Outbound
// messages wait in pend (decoded, per class) rather than as pre-encoded
// frames: the write loop drains the whole backlog per wakeup and
// coalesces it into batch frames, so encoding is deferred to the moment
// the frame boundary is known. The backlog survives reconnects (FIFO
// across reconnects) and is bounded by a shared per-link budget with
// class-aware shedding (see enqueue).
type tcpLink struct {
	peer NodeID
	addr string
	stop chan struct{}
	wake chan struct{} // cap 1: pend gained work; write loop should drain

	mu            sync.Mutex
	pend          [numClasses][]wire.Msg
	conn          net.Conn // current outgoing connection, nil while down
	dials         int
	reconnects    int
	drops         uint64 // every message lost at this link's queue
	shed          uint64 // subset of drops: backpressure sheds
	everConnected bool
}

// LinkStat is a point-in-time view of one outgoing link's supervision
// counters.
type LinkStat struct {
	Peer       NodeID
	Dials      int // dial attempts (successful or not)
	Reconnects int // connections lost after being established
	Drops      uint64
	Shed       uint64 // subset of Drops: queue-full backpressure sheds
	Connected  bool
}

// TCPBus implements Transport.
var _ Transport = (*TCPBus)(nil)

// NewTCPBus creates the real-socket transport for node self, accepting
// on lis (which the caller bound — possibly to port 0 — and whose final
// address appears in addrs[self]). addrs maps every node slot to its
// dialable address. Supervisors for self's adjacency in topo start
// immediately; deliveries queue into sched and run once it dispatches.
func NewTCPBus(sched sim.Scheduler, topo *Topology, self NodeID, addrs []string, lis net.Listener, cfg TCPConfig) *TCPBus {
	if len(addrs) != topo.N {
		panic(fmt.Sprintf("network: %d addrs for %d nodes", len(addrs), topo.N))
	}
	if cfg.QueueDepth <= 0 || cfg.DialMin <= 0 || cfg.DialMax < cfg.DialMin || cfg.Heartbeat <= 0 || cfg.Liveness <= 0 {
		panic("network: incomplete TCPConfig (use DefaultTCPConfig)")
	}
	b := &TCPBus{
		sched:    sched,
		cfg:      cfg,
		self:     self,
		addrs:    addrs,
		lis:      lis,
		topo:     topo,
		handlers: make([]Handler, topo.N),
		filters:  make([]ForwardFilter, topo.N),
		down:     make([]bool, topo.N),
		links:    map[NodeID]*tcpLink{},
		inbound:  map[NodeID]net.Conn{},
		refused:  map[NodeID]bool{},
		rng:      sched.RNG().Fork(),
	}
	b.mu.Lock()
	b.syncLinks(topo)
	b.mu.Unlock()
	b.wg.Add(1)
	go b.acceptLoop()
	return b
}

// syncLinks diffs outgoing supervisors against self's adjacency in topo:
// new adjacent peers get a supervisor, supervisors for vanished
// adjacencies are stopped (their connection closed, goroutine exits).
// Caller holds b.mu.
func (b *TCPBus) syncLinks(topo *Topology) {
	want := map[NodeID]bool{}
	for _, p := range topo.Neighbors(b.self) {
		want[p] = true
	}
	for peer, l := range b.links {
		if !want[peer] {
			b.stopLink(l)
			delete(b.links, peer)
		}
	}
	for peer := range want {
		if _, have := b.links[peer]; have {
			continue
		}
		l := &tcpLink{
			peer: peer,
			addr: b.addrs[peer],
			stop: make(chan struct{}),
			wake: make(chan struct{}, 1),
		}
		b.links[peer] = l
		b.wg.Add(1)
		go b.runLink(l)
	}
}

// stopLink signals the supervisor to exit and severs its connection.
func (b *TCPBus) stopLink(l *tcpLink) {
	close(l.stop)
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
	}
	l.mu.Unlock()
}

// runLink is the per-peer outgoing supervisor: dial with exponential
// backoff, handshake, drain the send queues until the connection dies,
// repeat. Exits when the link is stopped.
func (b *TCPBus) runLink(l *tcpLink) {
	defer b.wg.Done()
	backoff := b.cfg.DialMin
	for {
		select {
		case <-l.stop:
			return
		default:
		}
		if b.peerRefused(l.peer) {
			// Partitioned: idle (polling) until healed or stopped.
			if !sleepOrStop(l.stop, b.cfg.DialMin) {
				return
			}
			continue
		}
		l.mu.Lock()
		l.dials++
		l.mu.Unlock()
		conn, err := net.DialTimeout("tcp", l.addr, b.cfg.Liveness)
		if err == nil {
			conn.SetWriteDeadline(time.Now().Add(b.cfg.Liveness))
			_, err = conn.Write(wire.AppendHello(nil, wire.Hello{Cluster: b.cfg.Cluster, Node: uint32(b.self)}))
			if err != nil {
				conn.Close()
			}
		}
		if err != nil {
			if !sleepOrStop(l.stop, backoff) {
				return
			}
			if backoff *= 2; backoff > b.cfg.DialMax {
				backoff = b.cfg.DialMax
			}
			continue
		}
		backoff = b.cfg.DialMin
		l.mu.Lock()
		if l.everConnected {
			l.reconnects++
		}
		l.everConnected = true
		l.conn = conn
		l.mu.Unlock()
		b.writeLoop(l, conn)
		conn.Close()
		l.mu.Lock()
		l.conn = nil
		l.mu.Unlock()
		select {
		case <-l.stop:
			return
		default:
		}
	}
}

var heartbeatFrame = wire.AppendHeartbeat(nil)

// writeLoop drains the link's backlog onto conn until a write fails or
// the link stops. It coalesces: each wakeup takes the ENTIRE pending
// backlog — evidence first (the reserved-share analogue: foreground
// backlog can never starve evidence), then foreground — encodes it into
// one buffer (a single msg frame for a lone message, batch frames
// otherwise, chunked at wire.MaxFrame), and issues one conn.Write per
// wakeup: under saturation the syscall and frame-header cost amortize
// over the whole backlog instead of being paid per message. Heartbeats
// are only ever written when the backlog is empty — the keepalive is the
// first traffic shed under load, by construction.
func (b *TCPBus) writeLoop(l *tcpLink, conn net.Conn) {
	hb := time.NewTicker(b.cfg.Heartbeat)
	defer hb.Stop()
	var buf []byte
	var batch []wire.Msg
	for {
		select {
		case <-l.stop:
			return
		default:
		}
		l.mu.Lock()
		batch = append(batch[:0], l.pend[ClassEvidence]...)
		batch = append(batch, l.pend[ClassForeground]...)
		l.pend[ClassEvidence] = l.pend[ClassEvidence][:0]
		l.pend[ClassForeground] = l.pend[ClassForeground][:0]
		l.mu.Unlock()
		if len(batch) == 0 {
			select {
			case <-l.stop:
				return
			case <-l.wake:
				continue
			case <-hb.C:
				conn.SetWriteDeadline(time.Now().Add(b.cfg.Liveness))
				if _, err := conn.Write(heartbeatFrame); err != nil {
					return
				}
				continue
			}
		}
		buf = buf[:0]
		if len(batch) == 1 {
			var err error
			buf, err = wire.AppendMsg(buf, batch[0])
			if err != nil {
				continue // unreachable: enqueue applies the encode-side guard
			}
		} else {
			rest := batch
			for len(rest) > 0 {
				var n int
				var err error
				buf, n, err = wire.AppendBatch(buf, rest)
				if err != nil || n == 0 {
					break // unreachable: enqueue applies the encode-side guard
				}
				rest = rest[n:]
			}
		}
		conn.SetWriteDeadline(time.Now().Add(b.cfg.Liveness))
		if _, err := conn.Write(buf); err != nil {
			return
		}
	}
}

// acceptLoop admits inbound connections until the listener closes.
func (b *TCPBus) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.lis.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go b.serveConn(conn)
	}
}

// serveConn validates one inbound connection's Hello and then feeds its
// message frames back into the scheduler. Any protocol violation, a
// partitioned or non-adjacent peer, or liveness expiry closes the
// connection (the dialer's supervisor handles redial).
func (b *TCPBus) serveConn(conn net.Conn) {
	defer b.wg.Done()
	defer conn.Close()
	r := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(b.cfg.Liveness))
	typ, body, err := wire.ReadFrame(r)
	if err != nil || typ != wire.TypeHello {
		return
	}
	h, err := wire.ParseHello(body)
	if err != nil || h.Cluster != b.cfg.Cluster || int(h.Node) >= len(b.addrs) || NodeID(h.Node) == b.self {
		return
	}
	peer := NodeID(h.Node)
	b.mu.Lock()
	if b.closed || b.refused[peer] {
		b.mu.Unlock()
		return
	}
	// Close-on-replace: when a redialing peer establishes a new
	// connection, any stale one (whose reader may still be draining
	// kernel-buffered frames for up to cfg.Liveness) is severed and
	// superseded. Staleness is re-checked at dispatch time below, so a
	// superseded reader can never deliver behind the replacement —
	// per-(link, class) FIFO holds across reconnects, at the cost of
	// dropping the old connection's in-flight tail.
	if old, ok := b.inbound[peer]; ok {
		old.Close()
	}
	b.inbound[peer] = conn
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		if b.inbound[peer] == conn {
			delete(b.inbound, peer)
		}
		b.mu.Unlock()
	}()
	for {
		conn.SetReadDeadline(time.Now().Add(b.cfg.Liveness))
		typ, body, err := wire.ReadFrame(r)
		if err != nil {
			return
		}
		switch typ {
		case wire.TypeHeartbeat:
			// liveness only; the deadline refresh above is the effect
		case wire.TypeMsg:
			wm, err := wire.ParseMsg(body)
			if err != nil {
				return
			}
			m, ok := b.inboundMessage(wm)
			if !ok {
				return // protocol violation
			}
			if m == nil {
				continue // misrouted; drop
			}
			b.dispatchInbound(peer, conn, []*Message{m})
		case wire.TypeBatch:
			wms, err := wire.ParseBatch(body)
			if err != nil {
				return
			}
			ms := make([]*Message, 0, len(wms))
			for _, wm := range wms {
				m, ok := b.inboundMessage(wm)
				if !ok {
					return // protocol violation severs, even mid-batch
				}
				if m == nil {
					continue // misrouted entry; skip it, keep the rest
				}
				ms = append(ms, m)
			}
			if len(ms) == 0 {
				continue
			}
			b.dispatchInbound(peer, conn, ms)
		default:
			return
		}
	}
}

// inboundMessage range-checks one decoded wire message and converts it.
// Every field read off the wire is checked before it can index anything:
// class and node IDs index fixed-size arrays downstream (stats, queues,
// handlers), so a crafted frame from a Byzantine peer holding the
// cluster tag must sever the connection, not panic a correct node.
// Returns (nil, false) on a protocol violation, (nil, true) for a
// misrouted-but-well-formed message (skip it), and (m, true) otherwise.
func (b *TCPBus) inboundMessage(wm wire.Msg) (*Message, bool) {
	if wm.Class >= uint8(numClasses) ||
		int(wm.Src) >= len(b.addrs) || int(wm.Dst) >= len(b.addrs) ||
		int(wm.From) >= len(b.addrs) || int(wm.To) >= len(b.addrs) {
		return nil, false
	}
	if NodeID(wm.To) != b.self {
		return nil, true
	}
	return &Message{
		Src:     NodeID(wm.Src),
		Dst:     NodeID(wm.Dst),
		From:    NodeID(wm.From),
		To:      NodeID(wm.To),
		Class:   Class(wm.Class),
		Payload: wm.Payload,
		Hops:    int(wm.Hops),
		Sent:    b.sched.Now(),
	}, true
}

// dispatchInbound hands one read batch to the scheduler as ONE event so
// handlers serialize with every other runtime callback. Per-(link,
// class) FIFO holds because one connection's reader schedules in read
// order, the scheduler dispatches same-time events in insertion order,
// a batch event delivers its entries in order, and a frame from a
// superseded connection is dropped at dispatch rather than delivered
// behind its replacement's. Before scheduling, a coalesced evidence
// batch is handed to the pre-verifier on this reader goroutine: the
// bulk crypto runs concurrently with the executor and primes the verify
// memo, so by dispatch time the handler's signature checks are hits.
func (b *TCPBus) dispatchInbound(peer NodeID, conn net.Conn, ms []*Message) {
	if len(ms) > 1 {
		if pv := b.preVerifier(); pv != nil {
			ev := make([]*Message, 0, len(ms))
			for _, m := range ms {
				if m.Class == ClassEvidence {
					ev = append(ev, m)
				}
			}
			if len(ev) > 1 {
				pv(ev)
			}
		}
	}
	b.sched.At(b.sched.Now(), func() {
		if b.staleInbound(peer, conn) {
			for _, m := range ms {
				b.countDropped(m.Class)
			}
			return
		}
		for _, m := range ms {
			b.arrive(m)
		}
	})
}

// staleInbound reports whether conn has been superseded (or dropped) as
// peer's registered inbound connection. Checked at dispatch time, which
// the scheduler serializes: a replacement connection registers before
// reading its first frame, so once any of its frames has been delivered,
// every frame still queued from the old connection fails this check and
// is dropped instead of delivered out of order.
func (b *TCPBus) staleInbound(peer NodeID, conn net.Conn) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inbound[peer] != conn
}

// Topology returns the active wiring.
func (b *TCPBus) Topology() *Topology {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	return b.topo
}

// Handle installs the delivery handler for node id (only self's handler
// is ever invoked in-process). Safe from any goroutine.
func (b *TCPBus) Handle(id NodeID, h Handler) {
	b.stateMu.Lock()
	b.handlers[id] = h
	b.stateMu.Unlock()
}

// SetForwardFilter installs a Byzantine relay filter on node id. Safe
// from any goroutine.
func (b *TCPBus) SetForwardFilter(id NodeID, f ForwardFilter) {
	b.stateMu.Lock()
	b.filters[id] = f
	b.stateMu.Unlock()
}

// SetDown marks node id as crashed or repaired — local knowledge only:
// it silences self (id == self) or steers forwarding around a peer this
// process believes is down. Safe from any goroutine.
func (b *TCPBus) SetDown(id NodeID, down bool) {
	b.stateMu.Lock()
	b.down[id] = down
	b.stateMu.Unlock()
}

// IsDown reports whether id is locally believed crashed. Safe from any
// goroutine.
func (b *TCPBus) IsDown(id NodeID) bool {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	return b.down[id]
}

func (b *TCPBus) handlerFor(id NodeID) Handler {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	return b.handlers[id]
}

func (b *TCPBus) filterFor(id NodeID) ForwardFilter {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	return b.filters[id]
}

// SetPreVerifier installs pv (nil uninstalls). Safe from any goroutine;
// readers pick the change up on their next batch.
func (b *TCPBus) SetPreVerifier(pv PreVerifier) {
	b.stateMu.Lock()
	b.pv = pv
	b.stateMu.Unlock()
}

func (b *TCPBus) preVerifier() PreVerifier {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	return b.pv
}

// SetWiring replaces the active wiring: supervisors for links self lost
// are torn down (connections closed, goroutines exit), supervisors for
// new adjacencies are spun up and start dialing. Safe from any
// goroutine; traffic already queued completes or is dropped with the
// connection.
func (b *TCPBus) SetWiring(t *Topology) {
	b.stateMu.Lock()
	if t.N != b.topo.N {
		b.stateMu.Unlock()
		panic("network: SetWiring must keep the node-slot count")
	}
	b.topo = t
	b.stateMu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.syncLinks(t)
	// Sever inbound connections from peers no longer adjacent; their
	// supervisors (on the peer) are being stopped by its own SetWiring,
	// but a one-sided view must not keep accepting their traffic.
	adj := map[NodeID]bool{}
	for _, p := range t.Neighbors(b.self) {
		adj[p] = true
	}
	for peer, conn := range b.inbound {
		if !adj[peer] {
			conn.Close()
		}
	}
}

// SetPeerRefused partitions (refused=true) or heals (false) the link to
// peer in userspace: existing connections both ways are closed, inbound
// Hellos from peer are rejected, and the outgoing supervisor idles until
// healed. Safe from any goroutine.
func (b *TCPBus) SetPeerRefused(peer NodeID, refused bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refused[peer] = refused
	if !refused {
		return
	}
	if l, ok := b.links[peer]; ok {
		l.mu.Lock()
		if l.conn != nil {
			l.conn.Close()
		}
		l.mu.Unlock()
	}
	if conn, ok := b.inbound[peer]; ok {
		conn.Close()
	}
}

func (b *TCPBus) peerRefused(peer NodeID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.refused[peer]
}

// LinkCount returns the number of outgoing link supervisors — the
// TCPBus analogue of Bus.LaneCount, pinned by SetWiring convergence
// tests.
func (b *TCPBus) LinkCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.links)
}

// ConnectedCount returns how many outgoing links currently hold an
// established connection.
func (b *TCPBus) ConnectedCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, l := range b.links {
		l.mu.Lock()
		if l.conn != nil {
			n++
		}
		l.mu.Unlock()
	}
	return n
}

// LinkStats returns per-peer supervision counters for every outgoing
// link (order unspecified).
func (b *TCPBus) LinkStats() []LinkStat {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]LinkStat, 0, len(b.links))
	for _, l := range b.links {
		l.mu.Lock()
		out = append(out, LinkStat{
			Peer:       l.peer,
			Dials:      l.dials,
			Reconnects: l.reconnects,
			Drops:      l.drops,
			Shed:       l.shed,
			Connected:  l.conn != nil,
		})
		l.mu.Unlock()
	}
	return out
}

// Snapshot returns the traffic counters accumulated so far.
func (b *TCPBus) Snapshot() Stats {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return b.stats
}

func (b *TCPBus) countSent(class Class, size int64) {
	b.statsMu.Lock()
	b.stats.MsgsSent[class]++
	b.stats.BytesSent[class] += uint64(size)
	b.statsMu.Unlock()
}

func (b *TCPBus) countDropped(class Class) {
	b.statsMu.Lock()
	b.stats.MsgsDropped[class]++
	b.statsMu.Unlock()
}

// countShed records a queue-full backpressure shed: a drop that is
// additionally surfaced as shedding.
func (b *TCPBus) countShed(class Class) {
	b.statsMu.Lock()
	b.stats.MsgsDropped[class]++
	b.stats.MsgsShed[class]++
	b.statsMu.Unlock()
}

func (b *TCPBus) countDelivered(class Class) {
	b.statsMu.Lock()
	b.stats.MsgsDelivered[class]++
	b.statsMu.Unlock()
}

// SendDirect transmits payload one hop to an adjacent neighbor.
func (b *TCPBus) SendDirect(from, to NodeID, class Class, payload []byte) bool {
	m := b.newMessage(from, to, class, payload)
	m.From, m.To = from, to
	return b.transmit(m)
}

// Send routes payload from src to dst along the shortest path with
// store-and-forward at intermediate hops (self forwards traffic it
// relays, like every other implementation).
func (b *TCPBus) Send(src, dst NodeID, class Class, payload []byte) bool {
	if src == dst {
		panic("network: Send to self")
	}
	path, ok := b.Topology().Path(src, dst)
	if !ok {
		return false
	}
	m := b.newMessage(src, dst, class, payload)
	m.From, m.To = path[0], path[1]
	return b.transmit(m)
}

func (b *TCPBus) newMessage(src, dst NodeID, class Class, payload []byte) *Message {
	b.nextID++ // callback-serialized, like every send path
	return &Message{
		ID:      b.nextID,
		Src:     src,
		Dst:     dst,
		Class:   class,
		Payload: payload,
		Sent:    b.sched.Now(),
	}
}

// transmit enqueues m on the outgoing link to m.To for the coalescing
// write loop to encode. A missing link (not adjacent / not wired) or an
// oversize payload (the wire codec's encode-side guard, applied here
// because encoding is deferred past the queue) drops with accounting; a
// full queue sheds by class policy (see enqueue).
func (b *TCPBus) transmit(m *Message) bool {
	if b.IsDown(m.From) {
		b.countDropped(m.Class)
		return false
	}
	if m.From != b.self {
		// Only self's traffic leaves this process.
		b.countDropped(m.Class)
		return false
	}
	b.mu.Lock()
	l, ok := b.links[m.To]
	if !ok || b.closed {
		b.mu.Unlock()
		b.countDropped(m.Class)
		return false
	}
	b.mu.Unlock()
	if len(m.Payload) > wire.MaxMsgPayload {
		b.countDropped(m.Class)
		return false
	}
	qc := m.Class
	if b.cfg.EvidenceShare == 0 {
		qc = ClassForeground // single shared queue
	}
	if !b.enqueue(l, qc, wire.Msg{
		Class:   uint8(m.Class),
		Src:     uint32(m.Src),
		Dst:     uint32(m.Dst),
		From:    uint32(m.From),
		To:      uint32(m.To),
		Hops:    uint16(m.Hops),
		Payload: m.Payload,
	}) {
		b.countShed(m.Class)
		return false
	}
	b.countSent(m.Class, m.Size())
	return true
}

// enqueue appends wm to link l's class-qc backlog under the link's
// budget, shedding class-aware when full, and wakes the write loop. The
// shedding order is the priority order inverted — least valuable
// traffic goes first:
//
//   - Heartbeats are never queued at all (the write loop emits them only
//     when idle), so keepalive chatter is structurally the first shed.
//   - Foreground is capped at QueueDepth; an arriving foreground message
//     over the cap sheds ITSELF (tail-drop: periodic dataflow supersedes
//     itself, and the pinned queue-capacity semantics keep foreground's
//     budget exactly QueueDepth).
//   - Evidence may additionally borrow foreground's budget: at the
//     shared ceiling it first evicts the OLDEST queued foreground
//     message, and only when the entire budget is evidence does it evict
//     the oldest evidence (drop-oldest: the freshest records are the
//     ones conviction and batch verification want).
//
// Every shed is counted on the link (drops, shed) and, for evicted
// victims, against the victim's own class in the transport stats; the
// caller accounts the rejected message itself.
func (b *TCPBus) enqueue(l *tcpLink, qc Class, wm wire.Msg) bool {
	budget := b.cfg.QueueDepth
	if b.cfg.EvidenceShare != 0 {
		budget *= int(numClasses)
	}
	l.mu.Lock()
	accepted := true
	var evicted *wire.Msg
	if qc == ClassForeground {
		if len(l.pend[ClassForeground]) >= b.cfg.QueueDepth {
			accepted = false
		}
	} else if len(l.pend[ClassForeground])+len(l.pend[ClassEvidence]) >= budget {
		victim := ClassForeground
		if len(l.pend[ClassForeground]) == 0 {
			victim = ClassEvidence
		}
		q := l.pend[victim]
		old := q[0]
		evicted = &old
		copy(q, q[1:])
		l.pend[victim] = q[:len(q)-1]
	}
	if accepted {
		l.pend[qc] = append(l.pend[qc], wm)
	}
	if !accepted || evicted != nil {
		l.drops++
		l.shed++
	}
	l.mu.Unlock()
	if evicted != nil {
		b.countShed(Class(evicted.Class))
	}
	if accepted {
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	return accepted
}

// arrive runs on the scheduler for every message read off a socket:
// deliver if final, else forward — the same semantics as the other
// implementations, including Byzantine relay filters and residual loss.
func (b *TCPBus) arrive(m *Message) {
	if b.IsDown(m.To) {
		b.countDropped(m.Class)
		return
	}
	if b.cfg.LossProb > 0 && b.rng.Bool(b.cfg.LossProb) {
		b.countDropped(m.Class)
		return
	}
	m.Hops++
	if m.To == m.Dst {
		b.countDelivered(m.Class)
		if h := b.handlerFor(m.To); h != nil {
			h(m)
		}
		return
	}
	relay := m.To
	if f := b.filterFor(relay); f != nil {
		fm, delay, fwd := f(m)
		if !fwd {
			b.countDropped(m.Class)
			return
		}
		m = fm
		if delay > 0 {
			b.sched.After(delay, func() { b.forwardFrom(relay, m) })
			return
		}
	}
	b.forwardFrom(relay, m)
}

// forwardFrom advances m one hop along the current shortest path from
// relay (always self), avoiding locally-known-down intermediates.
func (b *TCPBus) forwardFrom(relay NodeID, m *Message) {
	path, ok := b.Topology().PathAvoiding(relay, m.Dst, func(x NodeID) bool { return b.IsDown(x) })
	if !ok || len(path) < 2 {
		b.countDropped(m.Class)
		return
	}
	m.From, m.To = relay, path[1]
	b.transmit(m)
}

// Close shuts the transport down: the listener stops accepting, every
// connection is severed, and all supervisors and readers are joined
// before Close returns.
func (b *TCPBus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.lis.Close()
	for _, l := range b.links {
		b.stopLink(l)
	}
	b.links = map[NodeID]*tcpLink{}
	for _, conn := range b.inbound {
		conn.Close()
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// sleepOrStop sleeps d, returning false early if stop closes.
func sleepOrStop(stop chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}
