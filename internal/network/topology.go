// Package network simulates the communication substrate from the paper's
// system model (§2.1): a set of nodes connected by links with finite
// bandwidth, where "the bandwidth of each link is statically allocated
// between the nodes" (the babbling-idiot countermeasure) and residual
// packet loss after FEC is rare enough to ignore by default.
//
// Two traffic classes exist on every link: the foreground class used by
// dataflow traffic and a reserved evidence class (§4.3) whose capacity
// share is carved out statically, so evidence distribution latency cannot
// be inflated by foreground congestion or by a flooding adversary.
package network

import (
	"fmt"

	"btr/internal/sim"
)

// NodeID identifies a node in the topology. IDs are dense, 0..N-1.
type NodeID int

// Link is an undirected, full-duplex, point-to-point link between two
// nodes. Each direction independently offers Bandwidth bytes/second; Prop
// is the one-way propagation delay.
type Link struct {
	A, B      NodeID
	Bandwidth int64 // bytes per second, per direction
	Prop      sim.Time
}

// Topology is a static node/link graph. Construct with one of the
// generators or assemble manually and call Validate.
type Topology struct {
	N     int
	Links []Link

	adj map[NodeID][]NodeID // neighbor lists, sorted
	lnk map[[2]NodeID]int   // directed endpoint pair -> Links index
}

// NewTopology builds a topology over n nodes with the given links and
// precomputes adjacency. It panics on malformed input; topologies are
// static configuration, so errors are programmer errors.
func NewTopology(n int, links []Link) *Topology {
	t := &Topology{N: n, Links: links}
	t.adj = make(map[NodeID][]NodeID, n)
	t.lnk = make(map[[2]NodeID]int, 2*len(links))
	for i, l := range links {
		if l.A == l.B {
			panic(fmt.Sprintf("network: self-link on node %d", l.A))
		}
		if l.A < 0 || int(l.A) >= n || l.B < 0 || int(l.B) >= n {
			panic(fmt.Sprintf("network: link %d-%d out of range [0,%d)", l.A, l.B, n))
		}
		if l.Bandwidth <= 0 {
			panic(fmt.Sprintf("network: link %d-%d has non-positive bandwidth", l.A, l.B))
		}
		if _, dup := t.lnk[[2]NodeID{l.A, l.B}]; dup {
			panic(fmt.Sprintf("network: duplicate link %d-%d", l.A, l.B))
		}
		t.lnk[[2]NodeID{l.A, l.B}] = i
		t.lnk[[2]NodeID{l.B, l.A}] = i
		t.adj[l.A] = append(t.adj[l.A], l.B)
		t.adj[l.B] = append(t.adj[l.B], l.A)
	}
	for id := range t.adj {
		ns := t.adj[id]
		for i := 1; i < len(ns); i++ { // insertion sort: lists are short
			for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
				ns[j], ns[j-1] = ns[j-1], ns[j]
			}
		}
	}
	return t
}

// Neighbors returns the sorted neighbor list of id (shared slice; do not
// mutate).
func (t *Topology) Neighbors(id NodeID) []NodeID { return t.adj[id] }

// LinkBetween returns the link joining a and b, if any.
func (t *Topology) LinkBetween(a, b NodeID) (Link, bool) {
	i, ok := t.lnk[[2]NodeID{a, b}]
	if !ok {
		return Link{}, false
	}
	return t.Links[i], true
}

// Connected reports whether the graph is connected (ignoring node health;
// this is the physical wiring).
func (t *Topology) Connected() bool {
	if t.N == 0 {
		return true
	}
	seen := make([]bool, t.N)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range t.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == t.N
}

// bfsFrom computes hop distances and deterministic parent pointers from
// src, skipping nodes for which skip returns true (src itself is never
// skipped). Unreachable nodes have dist -1.
func (t *Topology) bfsFrom(src NodeID, skip func(NodeID) bool) (dist []int, parent []NodeID) {
	dist = make([]int, t.N)
	parent = make([]NodeID, t.N)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range t.adj[v] { // sorted ⇒ deterministic parents
			if dist[w] != -1 || (skip != nil && skip(w)) {
				continue
			}
			dist[w] = dist[v] + 1
			parent[w] = v
			queue = append(queue, w)
		}
	}
	return dist, parent
}

// Path returns a shortest path from a to b (inclusive of both endpoints),
// choosing deterministically among equals (lowest neighbor IDs first).
// ok is false if no path exists.
func (t *Topology) Path(a, b NodeID) (path []NodeID, ok bool) {
	return t.PathAvoiding(a, b, nil)
}

// PathAvoiding is Path but refuses to route through nodes for which avoid
// returns true (the endpoints are always allowed).
func (t *Topology) PathAvoiding(a, b NodeID, avoid func(NodeID) bool) ([]NodeID, bool) {
	if a == b {
		return []NodeID{a}, true
	}
	skip := func(n NodeID) bool { return avoid != nil && n != b && avoid(n) }
	dist, parent := t.bfsFrom(a, skip)
	if dist[b] == -1 {
		return nil, false
	}
	path := []NodeID{b}
	for v := b; v != a; v = parent[v] {
		path = append(path, parent[v])
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, true
}

// Diameter returns the maximum shortest-path hop count over all connected
// pairs, or -1 for a disconnected graph.
func (t *Topology) Diameter() int {
	max := 0
	for s := 0; s < t.N; s++ {
		dist, _ := t.bfsFrom(NodeID(s), nil)
		for _, d := range dist {
			if d == -1 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// DiameterWithin returns the maximum shortest-path hop count over all
// pairs of nodes for which member returns true, routing only through
// member nodes — the diameter of the member-induced subgraph. It returns
// -1 when some member pair is disconnected within the subgraph, and 0
// when at most one member exists. Epoch planners use it so per-epoch
// bounds reflect the active membership, not dormant slots.
func (t *Topology) DiameterWithin(member func(NodeID) bool) int {
	max := 0
	for s := 0; s < t.N; s++ {
		if !member(NodeID(s)) {
			continue
		}
		dist, _ := t.bfsFrom(NodeID(s), func(x NodeID) bool { return !member(x) })
		for v, d := range dist {
			if !member(NodeID(v)) {
				continue
			}
			if d == -1 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// MinBandwidthWithin returns the smallest per-direction bandwidth over
// links whose both endpoints satisfy member (0 if no such link exists).
func (t *Topology) MinBandwidthWithin(member func(NodeID) bool) int64 {
	var min int64
	for _, l := range t.Links {
		if !member(l.A) || !member(l.B) {
			continue
		}
		if min == 0 || l.Bandwidth < min {
			min = l.Bandwidth
		}
	}
	return min
}

// MaxPropWithin returns the largest one-way propagation delay over links
// whose both endpoints satisfy member.
func (t *Topology) MaxPropWithin(member func(NodeID) bool) sim.Time {
	var max sim.Time
	for _, l := range t.Links {
		if !member(l.A) || !member(l.B) {
			continue
		}
		if l.Prop > max {
			max = l.Prop
		}
	}
	return max
}

// WithDelta returns a new topology over the same node slots with the
// given links added and dropped (drops are unordered endpoint pairs;
// dropping a missing link or adding a duplicate panics, like every other
// malformed-wiring programmer error). Membership epochs use it to apply
// a record's administrative link delta to the current wiring.
func (t *Topology) WithDelta(add []Link, drop [][2]NodeID) *Topology {
	gone := make(map[[2]NodeID]bool, len(drop))
	norm := func(a, b NodeID) [2]NodeID {
		if a > b {
			a, b = b, a
		}
		return [2]NodeID{a, b}
	}
	for _, d := range drop {
		if _, ok := t.lnk[[2]NodeID{d[0], d[1]}]; !ok {
			panic(fmt.Sprintf("network: dropping nonexistent link %d-%d", d[0], d[1]))
		}
		gone[norm(d[0], d[1])] = true
	}
	links := make([]Link, 0, len(t.Links)+len(add)-len(drop))
	for _, l := range t.Links {
		if !gone[norm(l.A, l.B)] {
			links = append(links, l)
		}
	}
	links = append(links, add...)
	return NewTopology(t.N, links)
}

// MinBandwidth returns the smallest per-direction link bandwidth in the
// topology; planners use it for conservative worst-case latency bounds.
func (t *Topology) MinBandwidth() int64 {
	if len(t.Links) == 0 {
		return 0
	}
	min := t.Links[0].Bandwidth
	for _, l := range t.Links[1:] {
		if l.Bandwidth < min {
			min = l.Bandwidth
		}
	}
	return min
}

// MaxProp returns the largest one-way propagation delay of any link.
func (t *Topology) MaxProp() sim.Time {
	var max sim.Time
	for _, l := range t.Links {
		if l.Prop > max {
			max = l.Prop
		}
	}
	return max
}

// --- Generators -----------------------------------------------------------

// Line returns a path topology 0-1-2-...-(n-1).
func Line(n int, bw int64, prop sim.Time) *Topology {
	links := make([]Link, 0, n-1)
	for i := 0; i < n-1; i++ {
		links = append(links, Link{NodeID(i), NodeID(i + 1), bw, prop})
	}
	return NewTopology(n, links)
}

// Ring returns a cycle topology.
func Ring(n int, bw int64, prop sim.Time) *Topology {
	if n < 3 {
		panic("network: ring needs n >= 3")
	}
	links := make([]Link, 0, n)
	for i := 0; i < n; i++ {
		links = append(links, Link{NodeID(i), NodeID((i + 1) % n), bw, prop})
	}
	return NewTopology(n, links)
}

// Star returns a hub-and-spoke topology with node 0 as the hub.
func Star(n int, bw int64, prop sim.Time) *Topology {
	links := make([]Link, 0, n-1)
	for i := 1; i < n; i++ {
		links = append(links, Link{0, NodeID(i), bw, prop})
	}
	return NewTopology(n, links)
}

// FullMesh returns a complete graph.
func FullMesh(n int, bw int64, prop sim.Time) *Topology {
	var links []Link
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			links = append(links, Link{NodeID(i), NodeID(j), bw, prop})
		}
	}
	return NewTopology(n, links)
}

// Grid returns a w×h mesh grid; node (x,y) has index y*w+x.
func Grid(w, h int, bw int64, prop sim.Time) *Topology {
	var links []Link
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				links = append(links, Link{id(x, y), id(x+1, y), bw, prop})
			}
			if y+1 < h {
				links = append(links, Link{id(x, y), id(x, y+1), bw, prop})
			}
		}
	}
	return NewTopology(w*h, links)
}

// DualBus models the redundant-bus layout common in avionics (e.g., two
// CAN buses): nodes 0 and 1 act as bus guardians/switch nodes and every
// other node links to both, giving two node-disjoint paths between any two
// non-guardian nodes.
func DualBus(n int, bw int64, prop sim.Time) *Topology {
	if n < 3 {
		panic("network: dual bus needs n >= 3")
	}
	var links []Link
	links = append(links, Link{0, 1, bw, prop})
	for i := 2; i < n; i++ {
		links = append(links, Link{0, NodeID(i), bw, prop})
		links = append(links, Link{1, NodeID(i), bw, prop})
	}
	return NewTopology(n, links)
}

// RandomConnected returns a random connected graph: a random spanning tree
// plus extra edges added with probability p per remaining pair. The result
// is deterministic in rng.
func RandomConnected(rng *sim.RNG, n int, p float64, bw int64, prop sim.Time) *Topology {
	if n < 1 {
		panic("network: RandomConnected needs n >= 1")
	}
	var links []Link
	have := map[[2]NodeID]bool{}
	addLink := func(a, b NodeID) {
		if a > b {
			a, b = b, a
		}
		if have[[2]NodeID{a, b}] {
			return
		}
		have[[2]NodeID{a, b}] = true
		links = append(links, Link{a, b, bw, prop})
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		// Attach each node to a random earlier node: uniform spanning
		// tree over the permutation order.
		addLink(NodeID(perm[i]), NodeID(perm[rng.Intn(i)]))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Bool(p) {
				addLink(NodeID(i), NodeID(j))
			}
		}
	}
	return NewTopology(n, links)
}
