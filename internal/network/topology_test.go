package network

import (
	"testing"
	"testing/quick"

	"btr/internal/sim"
)

func TestLineTopology(t *testing.T) {
	topo := Line(5, 1000, sim.Millisecond)
	if !topo.Connected() {
		t.Fatal("line not connected")
	}
	if d := topo.Diameter(); d != 4 {
		t.Errorf("diameter = %d, want 4", d)
	}
	if ns := topo.Neighbors(2); len(ns) != 2 || ns[0] != 1 || ns[1] != 3 {
		t.Errorf("Neighbors(2) = %v, want [1 3]", ns)
	}
	path, ok := topo.Path(0, 4)
	if !ok || len(path) != 5 {
		t.Fatalf("Path(0,4) = %v, %v", path, ok)
	}
}

func TestRingTopology(t *testing.T) {
	topo := Ring(6, 1000, 0)
	if d := topo.Diameter(); d != 3 {
		t.Errorf("ring diameter = %d, want 3", d)
	}
	for i := 0; i < 6; i++ {
		if len(topo.Neighbors(NodeID(i))) != 2 {
			t.Errorf("ring node %d degree != 2", i)
		}
	}
}

func TestStarTopology(t *testing.T) {
	topo := Star(7, 1000, 0)
	if d := topo.Diameter(); d != 2 {
		t.Errorf("star diameter = %d, want 2", d)
	}
	if len(topo.Neighbors(0)) != 6 {
		t.Errorf("hub degree = %d, want 6", len(topo.Neighbors(0)))
	}
	path, ok := topo.Path(3, 5)
	if !ok || len(path) != 3 || path[1] != 0 {
		t.Errorf("Path(3,5) = %v, want through hub", path)
	}
}

func TestFullMeshTopology(t *testing.T) {
	topo := FullMesh(5, 1000, 0)
	if d := topo.Diameter(); d != 1 {
		t.Errorf("mesh diameter = %d, want 1", d)
	}
	if len(topo.Links) != 10 {
		t.Errorf("mesh links = %d, want 10", len(topo.Links))
	}
}

func TestGridTopology(t *testing.T) {
	topo := Grid(3, 3, 1000, 0)
	if !topo.Connected() {
		t.Fatal("grid not connected")
	}
	if d := topo.Diameter(); d != 4 {
		t.Errorf("3x3 grid diameter = %d, want 4", d)
	}
	// Corner has degree 2, center degree 4.
	if len(topo.Neighbors(0)) != 2 {
		t.Errorf("corner degree = %d, want 2", len(topo.Neighbors(0)))
	}
	if len(topo.Neighbors(4)) != 4 {
		t.Errorf("center degree = %d, want 4", len(topo.Neighbors(4)))
	}
}

func TestDualBusTopology(t *testing.T) {
	topo := DualBus(6, 1000, 0)
	// Every non-guardian node must have two node-disjoint paths to any
	// other: removing either guardian keeps it connected.
	for g := NodeID(0); g <= 1; g++ {
		path, ok := topo.PathAvoiding(2, 5, func(x NodeID) bool { return x == g })
		if !ok {
			t.Errorf("no path 2->5 avoiding guardian %d", g)
		}
		for _, v := range path {
			if v == g {
				t.Errorf("path 2->5 uses avoided guardian %d: %v", g, path)
			}
		}
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 2 + int(seed%20)
		topo := RandomConnected(rng, n, 0.1, 1000, 0)
		return topo.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPathAvoiding(t *testing.T) {
	// Ring: avoid one direction's intermediate, path must go the long way.
	topo := Ring(5, 1000, 0)
	path, ok := topo.PathAvoiding(0, 2, func(x NodeID) bool { return x == 1 })
	if !ok {
		t.Fatal("no avoiding path on ring")
	}
	want := []NodeID{0, 4, 3, 2}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestPathToSelf(t *testing.T) {
	topo := Line(3, 1000, 0)
	path, ok := topo.Path(1, 1)
	if !ok || len(path) != 1 || path[0] != 1 {
		t.Errorf("Path(1,1) = %v, %v", path, ok)
	}
}

func TestDisconnectedPath(t *testing.T) {
	topo := NewTopology(4, []Link{{0, 1, 1000, 0}, {2, 3, 1000, 0}})
	if topo.Connected() {
		t.Error("disconnected topo reported connected")
	}
	if _, ok := topo.Path(0, 3); ok {
		t.Error("found path across disconnected components")
	}
	if topo.Diameter() != -1 {
		t.Error("diameter of disconnected graph should be -1")
	}
}

func TestTopologyValidationPanics(t *testing.T) {
	cases := []struct {
		name  string
		build func()
	}{
		{"self-link", func() { NewTopology(2, []Link{{0, 0, 10, 0}}) }},
		{"out-of-range", func() { NewTopology(2, []Link{{0, 5, 10, 0}}) }},
		{"zero-bandwidth", func() { NewTopology(2, []Link{{0, 1, 0, 0}}) }},
		{"duplicate", func() { NewTopology(2, []Link{{0, 1, 10, 0}, {1, 0, 10, 0}}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.build()
		})
	}
}

func TestMinBandwidthMaxProp(t *testing.T) {
	topo := NewTopology(3, []Link{
		{0, 1, 500, 2 * sim.Millisecond},
		{1, 2, 1000, 5 * sim.Millisecond},
	})
	if bw := topo.MinBandwidth(); bw != 500 {
		t.Errorf("MinBandwidth = %d, want 500", bw)
	}
	if p := topo.MaxProp(); p != 5*sim.Millisecond {
		t.Errorf("MaxProp = %v, want 5ms", p)
	}
}

func TestDeterministicPaths(t *testing.T) {
	// Same topology queried twice must yield identical paths (BFS with
	// sorted adjacency is deterministic).
	topo := Grid(4, 4, 1000, 0)
	p1, _ := topo.Path(0, 15)
	p2, _ := topo.Path(0, 15)
	if len(p1) != len(p2) {
		t.Fatal("path lengths differ")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("paths differ between identical queries")
		}
	}
}

func TestDiameterWithin(t *testing.T) {
	// Ring of 8: full diameter 4. Restrict to members {0..6} (7 dormant):
	// the induced subgraph is a line 0-1-...-6, diameter 6 — strictly
	// worse than the full ring, which is exactly why epoch bounds must
	// use the induced metric.
	ring := Ring(8, 1000, 10)
	if d := ring.Diameter(); d != 4 {
		t.Fatalf("ring-8 diameter = %d, want 4", d)
	}
	members := func(n NodeID) bool { return n != 7 }
	if d := ring.DiameterWithin(members); d != 6 {
		t.Fatalf("ring-8 minus one diameter = %d, want 6", d)
	}
	// All members: matches the plain diameter.
	if d := ring.DiameterWithin(func(NodeID) bool { return true }); d != 4 {
		t.Fatalf("all-member DiameterWithin = %d, want 4", d)
	}
	// Disconnecting membership (line missing an interior node) is -1.
	line := Line(5, 1000, 10)
	if d := line.DiameterWithin(func(n NodeID) bool { return n != 2 }); d != -1 {
		t.Fatalf("split line DiameterWithin = %d, want -1", d)
	}
	// Single member: diameter 0.
	if d := line.DiameterWithin(func(n NodeID) bool { return n == 1 }); d != 0 {
		t.Fatalf("singleton DiameterWithin = %d, want 0", d)
	}
}

func TestInducedBandwidthAndProp(t *testing.T) {
	topo := NewTopology(3, []Link{
		{0, 1, 100, 5},
		{1, 2, 10, 50}, // the slow, laggy link touches node 2
	})
	in01 := func(n NodeID) bool { return n != 2 }
	if bw := topo.MinBandwidthWithin(in01); bw != 100 {
		t.Fatalf("MinBandwidthWithin = %d, want 100", bw)
	}
	if p := topo.MaxPropWithin(in01); p != 5 {
		t.Fatalf("MaxPropWithin = %v, want 5", p)
	}
	all := func(NodeID) bool { return true }
	if bw := topo.MinBandwidthWithin(all); bw != topo.MinBandwidth() {
		t.Fatalf("all-member MinBandwidthWithin %d != MinBandwidth %d", bw, topo.MinBandwidth())
	}
	if p := topo.MaxPropWithin(all); p != topo.MaxProp() {
		t.Fatalf("all-member MaxPropWithin %v != MaxProp %v", p, topo.MaxProp())
	}
}

func TestWithDelta(t *testing.T) {
	line := Line(4, 1000, 10)
	// Close the ring: add 3-0.
	ring := line.WithDelta([]Link{{3, 0, 1000, 10}}, nil)
	if d := ring.Diameter(); d != 2 {
		t.Fatalf("delta-closed ring diameter = %d, want 2", d)
	}
	if line.Diameter() != 3 {
		t.Fatal("WithDelta mutated the original topology")
	}
	// Drop it again (order-insensitive endpoints).
	back := ring.WithDelta(nil, [][2]NodeID{{0, 3}})
	if d := back.Diameter(); d != 3 {
		t.Fatalf("delta-dropped line diameter = %d, want 3", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dropping a nonexistent link did not panic")
		}
	}()
	line.WithDelta(nil, [][2]NodeID{{0, 2}})
}
