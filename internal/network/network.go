// Package network provides BTR's communication substrate behind a single
// seam: the Transport interface. Three implementations exist — the
// deterministic simulated Network (single-threaded, driven by any
// sim.Scheduler, historically the discrete-event kernel), the live Bus
// (bus.go), a channel-based in-process transport whose per-link shaping
// goroutines model serialization on the wall clock, and the TCPBus
// (tcpbus.go), which carries the same traffic over real TCP sockets
// between node processes. Runtime code depends only on Transport, so the
// same node executive runs under simulation, live in-process deployment,
// and multi-process deployment unchanged. Topology (topology.go)
// describes the static wiring all implementations share.
package network

import (
	"fmt"

	"btr/internal/sim"
)

// Transport is the seam between the node runtime and whatever carries its
// messages. Implementations deliver asynchronously — via scheduler events
// (Network), shaping goroutines feeding back into the scheduler (Bus), or
// socket readers feeding back into the scheduler (TCPBus) — and must obey
// two delivery guarantees the runtime is built on:
//
//   - Serial handlers: handlers are invoked serially, never concurrently,
//     preserving the runtime's no-locking discipline. Live transports
//     achieve this by re-entering deliveries through the scheduler.
//
//   - Per-(link, class) FIFO: two messages transmitted on the same
//     directed link in the same class are delivered (to the next hop) in
//     transmission order. The runtime's period machinery assumes this —
//     e.g. an output for period p sent before an output for p+1 on the
//     same adjacency never overtakes it. No ordering is promised across
//     different links, directions, or classes. TestTransportFIFOPerLink
//     asserts this for every implementation.
//
// Concurrency contract per method: Send and SendDirect must be called
// from scheduler callbacks (or before dispatch starts) — they stamp Sent
// from the logical clock and, on the simulated Network, touch unlocked
// kernel state. Snapshot is safe from any goroutine. For the remaining
// control-plane methods (Handle, SetDown, IsDown, SetForwardFilter,
// SetWiring, Topology) the implementations differ: the simulated Network
// is single-threaded and requires scheduler-callback context for them
// too, while the live Bus and TCPBus guard that state with a lock so
// adversary drivers and supervision goroutines may call them from any
// goroutine. Code written against the Transport seam (rather than a
// concrete implementation) must assume the stricter contract.
type Transport interface {
	// Topology returns the static wiring.
	Topology() *Topology
	// Handle installs the delivery handler for node id.
	Handle(id NodeID, h Handler)
	// Send routes payload from src to dst along the (dynamic) shortest
	// path with store-and-forward at intermediate hops. It reports false
	// if no path exists or the sender is down.
	Send(src, dst NodeID, class Class, payload []byte) bool
	// SendDirect transmits payload one hop to an adjacent neighbor,
	// reporting false if the nodes are not adjacent or the sender is down.
	SendDirect(from, to NodeID, class Class, payload []byte) bool
	// SetDown marks node id as crashed (true) or repaired (false). A down
	// node does not receive, send, or forward.
	SetDown(id NodeID, down bool)
	// IsDown reports whether id is crashed.
	IsDown(id NodeID) bool
	// SetForwardFilter installs a Byzantine relay filter on node id.
	SetForwardFilter(id NodeID, f ForwardFilter)
	// SetWiring replaces the active wiring with t (same node-slot count;
	// membership epochs pass the member-restricted link set). Routing,
	// neighbor lists, and — on the live Bus — the per-link shaping lanes
	// follow the new wiring from the next send onward; traffic already in
	// flight completes under the wiring it was sent on.
	SetWiring(t *Topology)
	// Snapshot returns the traffic counters accumulated so far.
	Snapshot() Stats
}

// Class selects which statically-allocated share of link capacity a
// message uses. The evidence class exists so that fault evidence (§4.3)
// "competes for resources with the foreground tasks" only up to its
// reserved share and can never be starved by foreground load.
type Class int

const (
	// ClassForeground carries dataflow (sensor/task/actuator) traffic.
	ClassForeground Class = iota
	// ClassEvidence carries fault evidence on the reserved share.
	ClassEvidence
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassForeground:
		return "foreground"
	case ClassEvidence:
		return "evidence"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Message is a unit of traffic. Payload bytes are opaque to the network.
type Message struct {
	ID      uint64
	Src     NodeID // original sender
	Dst     NodeID // final destination
	From    NodeID // this hop's sender
	To      NodeID // this hop's receiver
	Class   Class
	Payload []byte
	Sent    sim.Time // time the original send was issued
	Hops    int
}

// Size returns the number of bytes the message occupies on the wire.
// A fixed header models addressing, sequencing and the MAC trailer.
func (m *Message) Size() int64 { return int64(len(m.Payload)) + headerBytes }

const headerBytes = 32

// Handler consumes messages delivered to a node.
type Handler func(m *Message)

// ForwardFilter lets a (Byzantine) node interfere with traffic it relays:
// return (msg, 0, true) to forward unchanged, (msg, d, true) to delay by d,
// or (nil, 0, false) to drop. Correct nodes have no filter installed.
type ForwardFilter func(m *Message) (*Message, sim.Time, bool)

// Stats aggregates per-class traffic counters.
type Stats struct {
	MsgsSent      [numClasses]uint64
	MsgsDelivered [numClasses]uint64
	MsgsDropped   [numClasses]uint64
	// MsgsShed is the subset of MsgsDropped lost to queue-full
	// backpressure shedding on the live transports (a lane or link queue
	// at capacity chose a victim by class policy). The simulated Network
	// models unbounded busy-until queueing and never sheds. Surfacing the
	// counter separately is what makes overload visible: drops from
	// crashed nodes or missing routes are faults, sheds are saturation.
	MsgsShed  [numClasses]uint64
	BytesSent [numClasses]uint64
	// BusyUntil tracking yields utilization via BytesSent / capacity·time.
}

// TotalShed sums shed counts across classes (the overload signal live
// reports surface).
func (s Stats) TotalShed() uint64 {
	var t uint64
	for _, v := range s.MsgsShed {
		t += v
	}
	return t
}

// PreVerifier, when installed on a live transport, is handed every
// coalesced inbound batch of evidence-class messages on the transport's
// own reader/lane goroutine, before the batch re-enters the scheduler
// for delivery. The runtime installs a signature pre-verifier here so
// bulk crypto (the batched cofactored verify) runs concurrently with the
// executor and primes the verify memo; by the time the handler sees each
// message, its signatures are memo hits. Implementations MUST be
// thread-safe and MUST NOT mutate the messages: delivery semantics are
// identical with or without a pre-verifier.
type PreVerifier func(ms []*Message)

// Config tunes the transport.
type Config struct {
	// EvidenceShare is the fraction of every link's per-direction
	// bandwidth reserved for ClassEvidence (0 disables the reservation
	// and evidence contends with foreground traffic; used by the E6
	// ablation). Typical: 0.2.
	EvidenceShare float64
	// LossProb is the residual per-hop loss probability after FEC.
	// The paper's model assumes losses "rare enough to be ignored";
	// default 0. Nonzero values exercise robustness tests.
	LossProb float64
}

// DefaultConfig matches the paper's assumptions.
func DefaultConfig() Config { return Config{EvidenceShare: 0.2, LossProb: 0} }

// chanKey identifies one directed virtual channel: (link direction, class).
type chanKey struct {
	from, to NodeID
	class    Class
}

// Network is the simulated transport. It is single-goroutine (driven by
// its scheduler's serialized callbacks) and therefore needs no locking:
// every method except Snapshot — including Handle, SetDown, and
// SetForwardFilter — must be called from scheduler callbacks or before
// dispatch starts. (The live Bus and TCPBus lock this state instead; see
// the Transport contract.)
type Network struct {
	k    sim.Scheduler
	topo *Topology
	cfg  Config

	handlers []Handler
	filters  []ForwardFilter
	down     []bool // crashed nodes neither receive nor forward

	free   map[chanKey]sim.Time // next time the channel is idle
	nextID uint64
	rng    *sim.RNG

	Stats Stats
}

// Network implements Transport.
var _ Transport = (*Network)(nil)

// New creates a transport over topo driven by scheduler k (usually the
// discrete-event kernel; any sim.Scheduler works).
func New(k sim.Scheduler, topo *Topology, cfg Config) *Network {
	if cfg.EvidenceShare < 0 || cfg.EvidenceShare >= 1 {
		panic("network: EvidenceShare must be in [0,1)")
	}
	return &Network{
		k:        k,
		topo:     topo,
		cfg:      cfg,
		handlers: make([]Handler, topo.N),
		filters:  make([]ForwardFilter, topo.N),
		down:     make([]bool, topo.N),
		free:     make(map[chanKey]sim.Time),
		rng:      k.RNG().Fork(),
	}
}

// Topology returns the static wiring.
func (n *Network) Topology() *Topology { return n.topo }

// Handle installs the delivery handler for node id.
func (n *Network) Handle(id NodeID, h Handler) { n.handlers[id] = h }

// SetForwardFilter installs a Byzantine relay filter on node id.
func (n *Network) SetForwardFilter(id NodeID, f ForwardFilter) { n.filters[id] = f }

// SetDown marks node id as crashed (true) or repaired (false). A down node
// does not receive, send, or forward.
func (n *Network) SetDown(id NodeID, down bool) { n.down[id] = down }

// SetWiring replaces the active wiring. Channel busy-until state for
// links present in both wirings carries over (same chanKey); state for
// removed links is simply never consulted again.
func (n *Network) SetWiring(t *Topology) {
	if t.N != n.topo.N {
		panic("network: SetWiring must keep the node-slot count")
	}
	n.topo = t
}

// IsDown reports whether id is crashed.
func (n *Network) IsDown(id NodeID) bool { return n.down[id] }

// Snapshot returns the traffic counters accumulated so far.
func (n *Network) Snapshot() Stats { return n.Stats }

// capacity returns the bytes/second available to class on one direction of
// link l.
func (n *Network) capacity(l Link, class Class) int64 {
	share := n.cfg.EvidenceShare
	if share == 0 {
		return l.Bandwidth // single shared channel; class is ignored
	}
	if class == ClassEvidence {
		c := int64(float64(l.Bandwidth) * share)
		if c < 1 {
			c = 1
		}
		return c
	}
	c := int64(float64(l.Bandwidth) * (1 - share))
	if c < 1 {
		c = 1
	}
	return c
}

// txTime returns the serialization delay of size bytes at cap bytes/second,
// rounded up to a whole microsecond.
func txTime(size, capacity int64) sim.Time {
	us := (size*int64(sim.Second) + capacity - 1) / capacity
	return sim.Time(us)
}

// TxTime exposes serialization delay for planner worst-case analysis.
func TxTime(size, capacity int64) sim.Time { return txTime(size, capacity) }

// SendDirect transmits payload one hop from to to an adjacent neighbor.
// It returns false if the nodes are not adjacent or the sender is down.
// Delivery (or forwarding) happens asynchronously via kernel events.
func (n *Network) SendDirect(from, to NodeID, class Class, payload []byte) bool {
	m := n.newMessage(from, to, class, payload)
	m.From, m.To = from, to
	return n.transmit(m)
}

// Send routes payload from src to dst along the static shortest path.
// Intermediate hops store-and-forward; a down or malicious intermediate
// may drop it (that is the point — omission faults on paths are part of
// the threat model, §4.2).
func (n *Network) Send(src, dst NodeID, class Class, payload []byte) bool {
	if src == dst {
		panic("network: Send to self")
	}
	path, ok := n.topo.Path(src, dst)
	if !ok {
		return false
	}
	m := n.newMessage(src, dst, class, payload)
	m.From, m.To = path[0], path[1]
	return n.transmit(m)
}

func (n *Network) newMessage(src, dst NodeID, class Class, payload []byte) *Message {
	n.nextID++
	return &Message{
		ID:      n.nextID,
		Src:     src,
		Dst:     dst,
		Class:   class,
		Payload: payload,
		Sent:    n.k.Now(),
	}
}

// transmit puts m on the wire for its current (From, To) hop.
func (n *Network) transmit(m *Message) bool {
	if n.down[m.From] {
		n.Stats.MsgsDropped[m.Class]++
		return false
	}
	link, ok := n.topo.LinkBetween(m.From, m.To)
	if !ok {
		n.Stats.MsgsDropped[m.Class]++
		return false
	}
	key := chanKey{m.From, m.To, m.Class}
	if n.cfg.EvidenceShare == 0 {
		key.class = ClassForeground // single shared channel
	}
	now := n.k.Now()
	start := now
	if f := n.free[key]; f > start {
		start = f
	}
	tt := txTime(m.Size(), n.capacity(link, m.Class))
	n.free[key] = start + tt
	n.Stats.MsgsSent[m.Class]++
	n.Stats.BytesSent[m.Class] += uint64(m.Size())
	arrival := start + tt + link.Prop
	n.k.At(arrival, func() { n.arrive(m) })
	return true
}

// arrive handles a message reaching m.To: deliver if final, else forward.
func (n *Network) arrive(m *Message) {
	if n.down[m.To] {
		n.Stats.MsgsDropped[m.Class]++
		return
	}
	if n.cfg.LossProb > 0 && n.rng.Bool(n.cfg.LossProb) {
		n.Stats.MsgsDropped[m.Class]++
		return
	}
	m.Hops++
	if m.To == m.Dst {
		n.Stats.MsgsDelivered[m.Class]++
		if h := n.handlers[m.To]; h != nil {
			h(m)
		}
		return
	}
	// Forwarding hop. A Byzantine relay may interfere.
	relay := m.To
	if f := n.filters[relay]; f != nil {
		fm, delay, fwd := f(m)
		if !fwd {
			n.Stats.MsgsDropped[m.Class]++
			return
		}
		m = fm
		if delay > 0 {
			n.k.After(delay, func() { n.forward(relay, m) })
			return
		}
	}
	n.forward(relay, m)
}

// forward advances m one hop along the current shortest path from relay,
// avoiding known-down intermediates when an alternative exists.
func (n *Network) forward(relay NodeID, m *Message) {
	path, ok := n.topo.PathAvoiding(relay, m.Dst, func(x NodeID) bool { return n.down[x] })
	if !ok || len(path) < 2 {
		n.Stats.MsgsDropped[m.Class]++
		return
	}
	m.From, m.To = relay, path[1]
	n.transmit(m)
}

// WorstCaseOneHop bounds the latency of a single-hop message of size bytes
// in class c assuming the channel is found busy with a maximal backlog of
// backlogMsgs messages of maxMsg bytes. Planners use this to derive
// detection and distribution bounds.
func (n *Network) WorstCaseOneHop(size int64, c Class, backlogMsgs int, maxMsg int64) sim.Time {
	capMin := n.topo.MinBandwidth()
	if n.cfg.EvidenceShare > 0 {
		if c == ClassEvidence {
			capMin = int64(float64(capMin) * n.cfg.EvidenceShare)
		} else {
			capMin = int64(float64(capMin) * (1 - n.cfg.EvidenceShare))
		}
		if capMin < 1 {
			capMin = 1
		}
	}
	t := txTime(size+headerBytes, capMin) + n.topo.MaxProp()
	t += sim.Time(backlogMsgs) * txTime(maxMsg+headerBytes, capMin)
	return t
}
