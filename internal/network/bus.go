package network

import (
	"sync"
	"time"

	"btr/internal/sim"
)

// Bus is the live, in-process, channel-based transport: the second
// Transport implementation, used by wall-clock deployments
// (internal/live, cmd/btrlive).
//
// Architecture: every directed link direction (and, when an evidence
// share is reserved, every class on it) owns a lane — a FIFO channel
// drained by a shaping goroutine. The lane worker sleeps each frame's
// serialization time on the wall clock (bandwidth shaping; queueing
// behind a busy lane emerges from channel FIFO order, the live analogue
// of Network's busy-until bookkeeping) and then hands delivery back to
// the scheduler after the link's propagation delay. Because deliveries
// re-enter through the scheduler, handlers run serialized with every
// other runtime callback — the Transport contract — while transmission
// itself is genuinely concurrent across lanes, like real link hardware.
//
// Concurrency discipline: Send/SendDirect must be called from scheduler
// callbacks (or before dispatch starts) — they stamp logical send times.
// The control plane (Handle, SetDown, IsDown, SetForwardFilter,
// SetWiring, Topology) is guarded by stateMu and safe from any
// goroutine: adversary drivers and live-deployment supervision mutate it
// while lanes are draining. Snapshot is safe from any goroutine. Close
// drains and joins every lane worker — the leak-free shutdown path the
// live tests pin.
type Bus struct {
	sched sim.Scheduler
	cfg   Config

	// stateMu guards the control plane: topo, handlers, filters, down.
	// Hot-path reads take the read lock; uncontended RLock is a single
	// atomic and the per-delivery cost is noise next to shaping delays.
	stateMu  sync.RWMutex
	topo     *Topology
	handlers []Handler
	filters  []ForwardFilter
	down     []bool

	// pv, when non-nil, is handed coalesced evidence batches on lane
	// goroutines before delivery is scheduled (see PreVerifier). Guarded
	// by stateMu like the rest of the control plane.
	pv PreVerifier

	lanes  map[chanKey]*busLane
	nextID uint64
	rng    *sim.RNG
	// wallNow is the pacing clock for lane throttling: the scheduler's
	// raw wall clock when available (see wallClocked), else Now.
	wallNow func() sim.Time

	statsMu sync.Mutex
	stats   Stats

	mu     sync.Mutex // guards closed and lane sends vs Close
	closed bool
	wg     sync.WaitGroup
}

// busLane is one shaped FIFO pipe: a directed link direction carrying one
// traffic class. The class is recorded so the worker and the shedding
// policy can tell evidence lanes (drop-oldest: the freshest evidence is
// the most valuable, and batch verification downstream wants recent
// records) from foreground lanes (tail-drop: stale sensor frames are
// superseded anyway).
type busLane struct {
	ch       chan busFrame
	capacity int64
	prop     sim.Time
	class    Class
}

// busFrame is one queued transmission: the message plus the modeled
// instant its hop-send was issued (the sending event's logical time).
// Serialization is accounted from that instant, not from the wall clock
// at dequeue time, so a momentarily lagging executor does not inflate
// modeled link delays and break the schedule's arrival windows.
type busFrame struct {
	m     *Message
	start sim.Time
}

// laneDepth bounds each lane's queue; a full lane drops (the live
// analogue of unbounded busy-until growth would be unbounded memory).
const laneDepth = 1024

// wallClocked is the optional scheduler capability lanes use for pacing:
// the raw wall clock, immune to the logical-time view Now presents
// while a callback is dispatching (sim.WallScheduler implements it).
// Pacing from Now would oversleep by the executor's catch-up lag.
type wallClocked interface {
	WallElapsed() sim.Time
}

// Bus implements Transport.
var _ Transport = (*Bus)(nil)

// NewBus creates the live transport over topo, delivering through sched.
// Call Close when the deployment shuts down.
func NewBus(sched sim.Scheduler, topo *Topology, cfg Config) *Bus {
	if cfg.EvidenceShare < 0 || cfg.EvidenceShare >= 1 {
		panic("network: EvidenceShare must be in [0,1)")
	}
	b := &Bus{
		sched:    sched,
		topo:     topo,
		cfg:      cfg,
		handlers: make([]Handler, topo.N),
		filters:  make([]ForwardFilter, topo.N),
		down:     make([]bool, topo.N),
		lanes:    map[chanKey]*busLane{},
		rng:      sched.RNG().Fork(),
	}
	b.wallNow = sched.Now
	if wc, ok := sched.(wallClocked); ok {
		b.wallNow = wc.WallElapsed
	}
	b.mu.Lock()
	b.syncLanes(topo)
	b.mu.Unlock()
	return b
}

// classes lists the traffic classes that get their own lane per link
// direction under the current config.
func (b *Bus) classes() []Class {
	if b.cfg.EvidenceShare == 0 {
		return []Class{ClassForeground} // single shared channel
	}
	return []Class{ClassForeground, ClassEvidence}
}

// syncLanes diffs the lane set against topo's links: lanes for new link
// directions are opened (one shaping goroutine each), lanes whose link
// vanished are closed — their workers drain any queued frames, deliver
// them under the old wiring, and exit. Caller holds b.mu.
func (b *Bus) syncLanes(topo *Topology) {
	want := map[chanKey]Link{}
	for _, l := range topo.Links {
		for _, dir := range [2][2]NodeID{{l.A, l.B}, {l.B, l.A}} {
			for _, class := range b.classes() {
				want[chanKey{dir[0], dir[1], class}] = l
			}
		}
	}
	for key, lane := range b.lanes {
		if _, keep := want[key]; !keep {
			close(lane.ch)
			delete(b.lanes, key)
		}
	}
	for key, l := range want {
		if _, have := b.lanes[key]; have {
			continue
		}
		lane := &busLane{
			ch:       make(chan busFrame, laneDepth),
			capacity: b.capacity(l, key.class),
			prop:     l.Prop,
			class:    key.class,
		}
		b.lanes[key] = lane
		b.wg.Add(1)
		go b.shape(lane)
	}
}

// capacity mirrors Network's static per-class share split.
func (b *Bus) capacity(l Link, class Class) int64 {
	share := b.cfg.EvidenceShare
	if share == 0 {
		return l.Bandwidth
	}
	frac := share
	if class == ClassForeground {
		frac = 1 - share
	}
	c := int64(float64(l.Bandwidth) * frac)
	if c < 1 {
		c = 1
	}
	return c
}

// shapeSleepSlack is the minimum backlog worth sleeping for. OS timers on
// a non-realtime kernel overshoot by ~1ms, so sleeping per micro-frame
// would inflate every serialization delay a thousandfold; instead the
// lane keeps a busy-until credit and only sleeps once the modeled backlog
// exceeds the slack. Sub-slack serialization still shapes delivery times
// (they are scheduled at the modeled instant), it just does not block the
// worker.
const shapeSleepSlack = 500 * sim.Microsecond

// shape is the lane worker: serialize (account each frame's tx time
// against the lane's busy-until credit), then schedule delivery at the
// modeled arrival instant. It coalesces: each wakeup drains the whole
// lane backlog, hands an evidence batch to the pre-verifier (bulk
// crypto, concurrent with the executor), schedules every frame at its
// exact modeled instant, and sleeps at most once per batch — under
// saturation the worker wakes O(1) times per backlog instead of once
// per frame. Modeled arrival times are identical to the one-frame-per-
// iteration loop: busy-until accounting is per frame either way, and
// the scheduler dispatches events at their modeled instants regardless
// of how early they enter the heap. Exits when the lane channel closes.
func (b *Bus) shape(lane *busLane) {
	defer b.wg.Done()
	var busyUntil sim.Time
	batch := make([]busFrame, 0, 64)
	for f := range lane.ch {
		batch = append(batch[:0], f)
	drain:
		for {
			select {
			case g, ok := <-lane.ch:
				if !ok {
					break drain // closed mid-drain; deliver what we hold
				}
				batch = append(batch, g)
			default:
				break drain
			}
		}
		if lane.class == ClassEvidence && len(batch) > 1 {
			if pv := b.preVerifier(); pv != nil {
				ms := make([]*Message, len(batch))
				for i := range batch {
					ms[i] = batch[i].m
				}
				pv(ms)
			}
		}
		for i := range batch {
			f := batch[i]
			tx := txTime(f.m.Size(), lane.capacity)
			if busyUntil < f.start {
				busyUntil = f.start
			}
			busyUntil += tx
			m := f.m
			b.sched.At(busyUntil+lane.prop, func() { b.arrive(m) })
		}
		// Throttle only when the modeled backlog runs ahead of the wall
		// clock by more than the slack; modeled arrival times stay exact
		// either way. Pacing uses the raw wall clock: the logical Now can
		// lag it while the executor catches up, and sleeping that lag too
		// would hold modeled-time deliveries out of the heap.
		if wait := busyUntil - b.wallNow(); wait > shapeSleepSlack {
			time.Sleep(time.Duration(wait) * time.Microsecond)
		}
	}
}

// Topology returns the active wiring.
func (b *Bus) Topology() *Topology {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	return b.topo
}

// Handle installs the delivery handler for node id. Safe from any
// goroutine (stateMu).
func (b *Bus) Handle(id NodeID, h Handler) {
	b.stateMu.Lock()
	b.handlers[id] = h
	b.stateMu.Unlock()
}

// SetForwardFilter installs a Byzantine relay filter on node id. Safe
// from any goroutine (stateMu).
func (b *Bus) SetForwardFilter(id NodeID, f ForwardFilter) {
	b.stateMu.Lock()
	b.filters[id] = f
	b.stateMu.Unlock()
}

// SetDown marks node id as crashed or repaired. Safe from any goroutine
// (stateMu).
func (b *Bus) SetDown(id NodeID, down bool) {
	b.stateMu.Lock()
	b.down[id] = down
	b.stateMu.Unlock()
}

// handlerFor / filterFor are the locked hot-path reads arrive uses.
func (b *Bus) handlerFor(id NodeID) Handler {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	return b.handlers[id]
}

func (b *Bus) filterFor(id NodeID) ForwardFilter {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	return b.filters[id]
}

// SetPreVerifier installs pv (nil uninstalls). Safe from any goroutine;
// lanes pick the change up on their next batch.
func (b *Bus) SetPreVerifier(pv PreVerifier) {
	b.stateMu.Lock()
	b.pv = pv
	b.stateMu.Unlock()
}

func (b *Bus) preVerifier() PreVerifier {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	return b.pv
}

// SetWiring replaces the active wiring at runtime: lanes for removed
// links are torn down (workers drain and exit), lanes for added links
// are spun up. Safe from any goroutine — it may race in-flight
// deliveries, which complete under the wiring they were sent on;
// membership epochs call it at activation.
func (b *Bus) SetWiring(t *Topology) {
	b.stateMu.Lock()
	if t.N != b.topo.N {
		b.stateMu.Unlock()
		panic("network: SetWiring must keep the node-slot count")
	}
	b.topo = t
	b.stateMu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.syncLanes(t)
}

// LaneCount returns the number of live shaping lanes (link directions x
// classes). Teardown tests use it to prove retired links' lanes are
// actually gone, not merely idle.
func (b *Bus) LaneCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.lanes)
}

// IsDown reports whether id is crashed. Safe from any goroutine.
func (b *Bus) IsDown(id NodeID) bool {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	return b.down[id]
}

// Snapshot returns the traffic counters accumulated so far.
func (b *Bus) Snapshot() Stats {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return b.stats
}

func (b *Bus) countSent(class Class, size int64) {
	b.statsMu.Lock()
	b.stats.MsgsSent[class]++
	b.stats.BytesSent[class] += uint64(size)
	b.statsMu.Unlock()
}

func (b *Bus) countDropped(class Class) {
	b.statsMu.Lock()
	b.stats.MsgsDropped[class]++
	b.statsMu.Unlock()
}

// countShed records a queue-full backpressure shed: it is a drop (the
// message is lost) that is additionally surfaced as shedding.
func (b *Bus) countShed(class Class) {
	b.statsMu.Lock()
	b.stats.MsgsDropped[class]++
	b.stats.MsgsShed[class]++
	b.statsMu.Unlock()
}

func (b *Bus) countDelivered(class Class) {
	b.statsMu.Lock()
	b.stats.MsgsDelivered[class]++
	b.statsMu.Unlock()
}

// SendDirect transmits payload one hop to an adjacent neighbor.
func (b *Bus) SendDirect(from, to NodeID, class Class, payload []byte) bool {
	m := b.newMessage(from, to, class, payload)
	m.From, m.To = from, to
	return b.transmit(m)
}

// Send routes payload from src to dst along the static shortest path with
// store-and-forward at intermediate hops.
func (b *Bus) Send(src, dst NodeID, class Class, payload []byte) bool {
	if src == dst {
		panic("network: Send to self")
	}
	path, ok := b.Topology().Path(src, dst)
	if !ok {
		return false
	}
	m := b.newMessage(src, dst, class, payload)
	m.From, m.To = path[0], path[1]
	return b.transmit(m)
}

func (b *Bus) newMessage(src, dst NodeID, class Class, payload []byte) *Message {
	b.nextID++
	return &Message{
		ID:      b.nextID,
		Src:     src,
		Dst:     dst,
		Class:   class,
		Payload: payload,
		Sent:    b.sched.Now(),
	}
}

// transmit enqueues m on its hop's lane. A full lane sheds by class
// policy instead of silently tail-dropping: evidence lanes evict their
// oldest queued frame so the newest evidence still gets through (batch
// verification and conviction want fresh records; under sustained flood
// the stale backlog is the right victim), foreground lanes shed the
// arriving frame (periodic dataflow supersedes itself). Every shed is
// surfaced in MsgsShed as well as MsgsDropped.
func (b *Bus) transmit(m *Message) bool {
	if b.IsDown(m.From) {
		b.countDropped(m.Class)
		return false
	}
	key := chanKey{m.From, m.To, m.Class}
	if b.cfg.EvidenceShare == 0 {
		key.class = ClassForeground // single shared channel
	}
	b.mu.Lock()
	lane, ok := b.lanes[key]
	if !ok {
		b.mu.Unlock()
		b.countDropped(m.Class)
		return false
	}
	if b.closed {
		b.mu.Unlock()
		return false
	}
	f := busFrame{m: m, start: b.sched.Now()}
	select {
	case lane.ch <- f:
		b.mu.Unlock()
		b.countSent(m.Class, m.Size())
		return true
	default:
	}
	if lane.class == ClassEvidence {
		// Evict the oldest queued frame, then retry once. The worker may
		// drain the queue concurrently, in which case the retry simply
		// succeeds without an eviction.
		var evicted *Message
		select {
		case old := <-lane.ch:
			evicted = old.m
		default:
		}
		select {
		case lane.ch <- f:
			b.mu.Unlock()
			if evicted != nil {
				b.countShed(evicted.Class)
			}
			b.countSent(m.Class, m.Size())
			return true
		default:
		}
		b.mu.Unlock()
		if evicted != nil {
			b.countShed(evicted.Class)
		}
		b.countShed(m.Class)
		return false
	}
	b.mu.Unlock()
	b.countShed(m.Class)
	return false
}

// arrive runs on the scheduler: deliver if final, else forward — the same
// semantics as the simulated Network, including Byzantine relay filters
// and residual loss.
func (b *Bus) arrive(m *Message) {
	if b.IsDown(m.To) {
		b.countDropped(m.Class)
		return
	}
	if b.cfg.LossProb > 0 && b.rng.Bool(b.cfg.LossProb) {
		b.countDropped(m.Class)
		return
	}
	m.Hops++
	if m.To == m.Dst {
		b.countDelivered(m.Class)
		if h := b.handlerFor(m.To); h != nil {
			h(m)
		}
		return
	}
	relay := m.To
	if f := b.filterFor(relay); f != nil {
		fm, delay, fwd := f(m)
		if !fwd {
			b.countDropped(m.Class)
			return
		}
		m = fm
		if delay > 0 {
			b.sched.After(delay, func() { b.forward(relay, m) })
			return
		}
	}
	b.forward(relay, m)
}

// forward advances m one hop along the current shortest path from relay,
// avoiding known-down intermediates when an alternative exists.
func (b *Bus) forward(relay NodeID, m *Message) {
	path, ok := b.Topology().PathAvoiding(relay, m.Dst, func(x NodeID) bool { return b.IsDown(x) })
	if !ok || len(path) < 2 {
		b.countDropped(m.Class)
		return
	}
	m.From, m.To = relay, path[1]
	b.transmit(m)
}

// Close shuts the transport down: no further sends are accepted, every
// lane drains, and all shaping goroutines are joined before Close
// returns. Call it after the driving scheduler has stopped dispatching
// (late deliveries the lanes hand to a stopped scheduler are discarded
// there).
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	for _, lane := range b.lanes {
		close(lane.ch)
	}
	b.mu.Unlock()
	b.wg.Wait()
}
