// Package wire defines the length-prefixed frame codec the real-socket
// transport (network.TCPBus) speaks between node processes. It is the
// only layer that touches raw connections, so it is also where the
// encode-side hardening lives: every length field is range-checked
// before it is written, and every length field read off the wire is
// range-checked before a single byte is allocated — a frame that cannot
// be decoded exactly as it was encoded is never emitted.
//
// Wire layout (all integers little-endian):
//
//	frame   := len u32 | type u8 | body
//	            len counts everything after the len field (type + body)
//	            and must be in [1, MaxFrame].
//	hello   := magic "btrw" | version u8 | cluster u64 | node u32
//	            First frame on every connection, sent by the dialer; the
//	            acceptor learns the peer's identity from it and rejects
//	            cross-cluster or cross-version connections.
//	msg     := class u8 | src u32 | dst u32 | from u32 | to u32 |
//	           hops u16 | payload
//	            One transport message hop. The payload is opaque runtime
//	            framing (data / evidence / membership), exactly the bytes
//	            the in-process transports carry.
//	heartbeat := empty body
//	            Keeps the connection's liveness clock fresh when the link
//	            is otherwise idle.
//	batch   := count u16 | entry*count
//	entry   := class u8 | src u32 | dst u32 | from u32 | to u32 |
//	           hops u16 | plen u32 | payload
//	            A coalesced write: the sender drained its whole per-class
//	            queue into one frame, one syscall. Entries are msgs in
//	            send order; every entry must also fit a single msg frame,
//	            so coalescing can never smuggle an oversize message.
//
// The handshake and reconnect state machine built on these frames is
// documented on network.TCPBus (and in the README's wire-protocol
// section).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types.
const (
	TypeHello     = byte('H')
	TypeMsg       = byte('M')
	TypeHeartbeat = byte('B')
	TypeBatch     = byte('G') // gathered msgs: one frame, many hops
)

// Magic and Version identify the protocol. A peer speaking a different
// version (or random TCP noise) is rejected at the handshake.
const (
	Magic   = "btrw"
	Version = 1
)

// MaxFrame is the ceiling on the encoded size of one frame (type byte +
// body). It bounds the allocation a length prefix can demand from a
// receiver and the frame an encoder may emit; both sides enforce it.
const MaxFrame = 1 << 20

// MaxMsgPayload is the largest msg payload MaxFrame admits. Exported
// so senders that defer encoding (the coalescing write path) can apply
// the encode-side guard before queueing.
const MaxMsgPayload = MaxFrame - 1 - msgHeaderSize

// msgHeaderSize is the fixed part of a msg body: class u8 + four node
// IDs (u32 each) + hops u16.
const msgHeaderSize = 1 + 4*4 + 2

// Errors the codec can return. ErrOversize fires on the encode side —
// the caller handed the codec something that cannot be framed without
// truncating a length field; refusing loudly here is the hardening this
// package exists for.
var (
	ErrOversize  = errors.New("wire: frame exceeds MaxFrame")
	ErrTruncated = errors.New("wire: truncated frame")
)

// Hello is the handshake frame: the dialer announces who it is and which
// cluster it belongs to before any traffic flows.
type Hello struct {
	Cluster uint64 // deployment tag (derived from the seed); must match
	Node    uint32 // the sender's node slot
}

// Msg is one transport message hop.
type Msg struct {
	Class   uint8
	Src     uint32
	Dst     uint32
	From    uint32
	To      uint32
	Hops    uint16
	Payload []byte
}

// AppendHello appends an encoded hello frame (including the length
// prefix) to dst.
func AppendHello(dst []byte, h Hello) []byte {
	body := len(Magic) + 1 + 8 + 4
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+body))
	dst = append(dst, TypeHello)
	dst = append(dst, Magic...)
	dst = append(dst, Version)
	dst = binary.LittleEndian.AppendUint64(dst, h.Cluster)
	return binary.LittleEndian.AppendUint32(dst, h.Node)
}

// AppendHeartbeat appends an encoded heartbeat frame to dst.
func AppendHeartbeat(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, 1)
	return append(dst, TypeHeartbeat)
}

// AppendMsg appends an encoded msg frame to dst. It returns ErrOversize
// (with dst unchanged) when the payload cannot fit a frame — the
// encode-side guard: a payload one byte too large is an error here, not
// a corrupt frame at the receiver.
func AppendMsg(dst []byte, m Msg) ([]byte, error) {
	if len(m.Payload) > MaxMsgPayload {
		return dst, fmt.Errorf("%w (payload %d > %d)", ErrOversize, len(m.Payload), MaxMsgPayload)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+msgHeaderSize+len(m.Payload)))
	dst = append(dst, TypeMsg)
	dst = append(dst, m.Class)
	dst = binary.LittleEndian.AppendUint32(dst, m.Src)
	dst = binary.LittleEndian.AppendUint32(dst, m.Dst)
	dst = binary.LittleEndian.AppendUint32(dst, m.From)
	dst = binary.LittleEndian.AppendUint32(dst, m.To)
	dst = binary.LittleEndian.AppendUint16(dst, m.Hops)
	return append(dst, m.Payload...), nil
}

// batchEntryHeaderSize is the fixed part of one batch entry: the msg
// header plus a u32 payload length (needed because entries are
// concatenated inside one frame body).
const batchEntryHeaderSize = msgHeaderSize + 4

// maxBatchCount is the ceiling on entries per batch frame (count is u16).
const maxBatchCount = 1<<16 - 1

// AppendBatch appends ONE encoded batch frame holding a maximal prefix
// of ms to dst and returns the extended slice plus how many messages it
// consumed; callers loop until the queue is drained. The encode-side
// guards mirror AppendMsg: a message whose payload could not ride a
// single msg frame is ErrOversize (with dst unchanged, zero consumed) —
// it would be just as unframeable inside a batch — and the frame is
// closed before it would exceed MaxFrame or the u16 entry count.
// An empty ms consumes nothing and appends nothing.
func AppendBatch(dst []byte, ms []Msg) ([]byte, int, error) {
	if len(ms) == 0 {
		return dst, 0, nil
	}
	// Plan the prefix first so the length field is written once, exactly.
	size := 1 + 2 // type byte + count
	n := 0
	for n < len(ms) && n < maxBatchCount {
		if len(ms[n].Payload) > MaxMsgPayload {
			if n == 0 {
				return dst, 0, fmt.Errorf("%w (payload %d > %d)", ErrOversize, len(ms[n].Payload), MaxMsgPayload)
			}
			break // emit what fits; the caller will hit the error next call
		}
		entry := batchEntryHeaderSize + len(ms[n].Payload)
		if size+entry > MaxFrame {
			break
		}
		size += entry
		n++
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(size))
	dst = append(dst, TypeBatch)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(n))
	for i := 0; i < n; i++ {
		m := &ms[i]
		dst = append(dst, m.Class)
		dst = binary.LittleEndian.AppendUint32(dst, m.Src)
		dst = binary.LittleEndian.AppendUint32(dst, m.Dst)
		dst = binary.LittleEndian.AppendUint32(dst, m.From)
		dst = binary.LittleEndian.AppendUint32(dst, m.To)
		dst = binary.LittleEndian.AppendUint16(dst, m.Hops)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Payload)))
		dst = append(dst, m.Payload...)
	}
	return dst, n, nil
}

// ParseBatch decodes a batch frame body. Strict: a zero count, a
// truncated entry, a per-entry payload length exceeding what a single
// msg frame admits, or trailing bytes after the last entry are all
// errors — the decode-side twin of AppendBatch's guards, applied before
// any per-entry allocation.
func ParseBatch(body []byte) ([]Msg, error) {
	if len(body) < 2 {
		return nil, ErrTruncated
	}
	count := int(binary.LittleEndian.Uint16(body))
	if count == 0 {
		return nil, fmt.Errorf("wire: empty batch frame")
	}
	off := 2
	ms := make([]Msg, 0, count)
	for i := 0; i < count; i++ {
		if len(body)-off < batchEntryHeaderSize {
			return nil, ErrTruncated
		}
		m := Msg{
			Class: body[off],
			Src:   binary.LittleEndian.Uint32(body[off+1:]),
			Dst:   binary.LittleEndian.Uint32(body[off+5:]),
			From:  binary.LittleEndian.Uint32(body[off+9:]),
			To:    binary.LittleEndian.Uint32(body[off+13:]),
			Hops:  binary.LittleEndian.Uint16(body[off+17:]),
		}
		plen := int(binary.LittleEndian.Uint32(body[off+19:]))
		off += batchEntryHeaderSize
		if plen > MaxMsgPayload || plen > len(body)-off {
			return nil, fmt.Errorf("wire: bad batch entry payload length %d", plen)
		}
		m.Payload = append([]byte(nil), body[off:off+plen]...)
		off += plen
		ms = append(ms, m)
	}
	if off != len(body) {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch", len(body)-off)
	}
	return ms, nil
}

// ReadFrame reads one length-prefixed frame from r, returning its type
// byte and body. A length prefix outside [1, MaxFrame] is rejected
// before any body allocation.
func ReadFrame(r *bufio.Reader) (typ byte, body []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("wire: short frame: %w", err)
	}
	return buf[0], buf[1:], nil
}

// ParseHello decodes a hello frame body, rejecting wrong magic, version,
// or framing.
func ParseHello(body []byte) (Hello, error) {
	want := len(Magic) + 1 + 8 + 4
	if len(body) != want {
		return Hello{}, fmt.Errorf("wire: bad hello length %d", len(body))
	}
	if string(body[:len(Magic)]) != Magic {
		return Hello{}, fmt.Errorf("wire: bad hello magic")
	}
	if body[len(Magic)] != Version {
		return Hello{}, fmt.Errorf("wire: protocol version %d (want %d)", body[len(Magic)], Version)
	}
	off := len(Magic) + 1
	return Hello{
		Cluster: binary.LittleEndian.Uint64(body[off:]),
		Node:    binary.LittleEndian.Uint32(body[off+8:]),
	}, nil
}

// ParseMsg decodes a msg frame body. Strict: a body shorter than the
// fixed header is ErrTruncated; everything after the header is the
// payload (its length was already bounded by the frame length check).
func ParseMsg(body []byte) (Msg, error) {
	if len(body) < msgHeaderSize {
		return Msg{}, ErrTruncated
	}
	m := Msg{
		Class: body[0],
		Src:   binary.LittleEndian.Uint32(body[1:]),
		Dst:   binary.LittleEndian.Uint32(body[5:]),
		From:  binary.LittleEndian.Uint32(body[9:]),
		To:    binary.LittleEndian.Uint32(body[13:]),
		Hops:  binary.LittleEndian.Uint16(body[17:]),
	}
	m.Payload = append([]byte(nil), body[msgHeaderSize:]...)
	return m, nil
}
