// Q frames are the client-facing half of the wire protocol: the
// request/response family the replicated register service
// (internal/client) speaks between quorum clients and node processes.
// They ride the same length-prefixed framing as the node-to-node types
// and inherit the same hardening discipline — every length field is
// range-checked on the encode side before it is written and on the
// decode side before a single byte is allocated.
//
// Wire layout (all integers little-endian):
//
//	qreq    := op u8 | opid u64 | epoch u64 | ts u64 | writer u32 |
//	           klen u16 | key | vlen u32 | value
//	            One register operation. op is QOpGet or QOpSet; epoch is
//	            the client's view of the active membership epoch (the
//	            server rejects mismatches with QStatusStaleView so the
//	            client can adopt the newer view and resubmit the same
//	            opid). ts/writer/value carry the tagged write for QOpSet
//	            and are zero/empty for QOpGet.
//	qresp   := status u8 | opid u64 | epoch u64 | ts u64 | writer u32 |
//	           vlen u32 | value | mcount u16 | member u32 * mcount
//	            The server's answer. opid echoes the request; epoch is
//	            the server's current epoch (on QStatusStaleView the
//	            member list names the current epoch's active slots so a
//	            stale client can rebuild its view without a directory).
package wire

import (
	"encoding/binary"
	"fmt"
)

// Client-facing frame types: 'Q' carries a register request, 'q' the
// response — one family, one case bit apart.
const (
	TypeQRequest  = byte('Q')
	TypeQResponse = byte('q')
)

// Register operations a qreq can carry.
const (
	QOpGet = uint8(1) // read the register's current (ts, writer, value)
	QOpSet = uint8(2) // store a tagged write (last-writer-wins on ts, writer)
)

// Response statuses.
const (
	QStatusOK        = uint8(0)
	QStatusStaleView = uint8(1) // request epoch ≠ server epoch; view attached
	QStatusErr       = uint8(2) // server-side refusal (bad op, shutting down)
)

// Caps on the variable-length qreq/qresp fields. They are deliberately
// far below MaxFrame: a register key is a name, not a blob, and the
// member list is bounded by the slot universe, so anything larger is a
// corrupt or hostile frame and is refused before allocation.
const (
	MaxQKey     = 255           // key bytes per request
	MaxQValue   = 1 << 16       // value bytes per register
	MaxQMembers = (1 << 16) / 4 // member IDs per response view
)

// qreqHeaderSize is the fixed part of a qreq body: op u8 + opid u64 +
// epoch u64 + ts u64 + writer u32 + klen u16 + vlen u32.
const qreqHeaderSize = 1 + 8 + 8 + 8 + 4 + 2 + 4

// qrespHeaderSize is the fixed part of a qresp body: status u8 + opid
// u64 + epoch u64 + ts u64 + writer u32 + vlen u32 + mcount u16.
const qrespHeaderSize = 1 + 8 + 8 + 8 + 4 + 4 + 2

// QRequest is one register operation as it crosses the wire.
type QRequest struct {
	Op     uint8
	OpID   uint64
	Epoch  uint64
	TS     uint64
	Writer uint32
	Key    []byte
	Value  []byte
}

// QResponse is the server's answer to a QRequest.
type QResponse struct {
	Status  uint8
	OpID    uint64
	Epoch   uint64
	TS      uint64
	Writer  uint32
	Value   []byte
	Members []uint32
}

// AppendQRequest appends an encoded qreq frame (including the length
// prefix) to dst. It returns ErrOversize with dst unchanged when the
// key or value exceeds its cap — the encode-side guard: an unframeable
// request is an error here, never a corrupt frame at the server.
func AppendQRequest(dst []byte, q QRequest) ([]byte, error) {
	if len(q.Key) > MaxQKey {
		return dst, fmt.Errorf("%w (key %d > %d)", ErrOversize, len(q.Key), MaxQKey)
	}
	if len(q.Value) > MaxQValue {
		return dst, fmt.Errorf("%w (value %d > %d)", ErrOversize, len(q.Value), MaxQValue)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+qreqHeaderSize+len(q.Key)+len(q.Value)))
	dst = append(dst, TypeQRequest)
	dst = append(dst, q.Op)
	dst = binary.LittleEndian.AppendUint64(dst, q.OpID)
	dst = binary.LittleEndian.AppendUint64(dst, q.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, q.TS)
	dst = binary.LittleEndian.AppendUint32(dst, q.Writer)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(q.Key)))
	dst = append(dst, q.Key...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(q.Value)))
	return append(dst, q.Value...), nil
}

// ParseQRequest decodes a qreq frame body. Strict: a body shorter than
// the fixed header, a klen or vlen exceeding its cap or the remaining
// body, or trailing bytes after the value are all errors, raised before
// any allocation sized by a wire field.
func ParseQRequest(body []byte) (QRequest, error) {
	if len(body) < qreqHeaderSize {
		return QRequest{}, ErrTruncated
	}
	q := QRequest{
		Op:     body[0],
		OpID:   binary.LittleEndian.Uint64(body[1:]),
		Epoch:  binary.LittleEndian.Uint64(body[9:]),
		TS:     binary.LittleEndian.Uint64(body[17:]),
		Writer: binary.LittleEndian.Uint32(body[25:]),
	}
	klen := int(binary.LittleEndian.Uint16(body[29:]))
	off := 31
	if klen > MaxQKey || klen > len(body)-off {
		return QRequest{}, fmt.Errorf("wire: bad qreq key length %d", klen)
	}
	q.Key = append([]byte(nil), body[off:off+klen]...)
	off += klen
	if len(body)-off < 4 {
		return QRequest{}, ErrTruncated
	}
	vlen := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if vlen > MaxQValue || vlen > len(body)-off {
		return QRequest{}, fmt.Errorf("wire: bad qreq value length %d", vlen)
	}
	q.Value = append([]byte(nil), body[off:off+vlen]...)
	off += vlen
	if off != len(body) {
		return QRequest{}, fmt.Errorf("wire: %d trailing bytes after qreq", len(body)-off)
	}
	return q, nil
}

// AppendQResponse appends an encoded qresp frame (including the length
// prefix) to dst. ErrOversize with dst unchanged when the value or the
// member list exceeds its cap.
func AppendQResponse(dst []byte, q QResponse) ([]byte, error) {
	if len(q.Value) > MaxQValue {
		return dst, fmt.Errorf("%w (value %d > %d)", ErrOversize, len(q.Value), MaxQValue)
	}
	if len(q.Members) > MaxQMembers {
		return dst, fmt.Errorf("%w (members %d > %d)", ErrOversize, len(q.Members), MaxQMembers)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+qrespHeaderSize+len(q.Value)+4*len(q.Members)))
	dst = append(dst, TypeQResponse)
	dst = append(dst, q.Status)
	dst = binary.LittleEndian.AppendUint64(dst, q.OpID)
	dst = binary.LittleEndian.AppendUint64(dst, q.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, q.TS)
	dst = binary.LittleEndian.AppendUint32(dst, q.Writer)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(q.Value)))
	dst = append(dst, q.Value...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(q.Members)))
	for _, m := range q.Members {
		dst = binary.LittleEndian.AppendUint32(dst, m)
	}
	return dst, nil
}

// ParseQResponse decodes a qresp frame body with the same strictness as
// ParseQRequest: every wire-supplied length is checked against its cap
// and the remaining body before allocation, and trailing bytes after
// the member list are an error.
func ParseQResponse(body []byte) (QResponse, error) {
	if len(body) < qrespHeaderSize {
		return QResponse{}, ErrTruncated
	}
	q := QResponse{
		Status: body[0],
		OpID:   binary.LittleEndian.Uint64(body[1:]),
		Epoch:  binary.LittleEndian.Uint64(body[9:]),
		TS:     binary.LittleEndian.Uint64(body[17:]),
		Writer: binary.LittleEndian.Uint32(body[25:]),
	}
	vlen := int(binary.LittleEndian.Uint32(body[29:]))
	off := 33
	if vlen > MaxQValue || vlen > len(body)-off {
		return QResponse{}, fmt.Errorf("wire: bad qresp value length %d", vlen)
	}
	q.Value = append([]byte(nil), body[off:off+vlen]...)
	off += vlen
	if len(body)-off < 2 {
		return QResponse{}, ErrTruncated
	}
	mcount := int(binary.LittleEndian.Uint16(body[off:]))
	off += 2
	if mcount > MaxQMembers || 4*mcount > len(body)-off {
		return QResponse{}, fmt.Errorf("wire: bad qresp member count %d", mcount)
	}
	if mcount > 0 {
		q.Members = make([]uint32, mcount)
		for i := range q.Members {
			q.Members[i] = binary.LittleEndian.Uint32(body[off:])
			off += 4
		}
	}
	if off != len(body) {
		return QResponse{}, fmt.Errorf("wire: %d trailing bytes after qresp", len(body)-off)
	}
	return q, nil
}
