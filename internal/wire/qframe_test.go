package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func qreqEqual(a, b QRequest) bool {
	return a.Op == b.Op && a.OpID == b.OpID && a.Epoch == b.Epoch &&
		a.TS == b.TS && a.Writer == b.Writer &&
		bytes.Equal(a.Key, b.Key) && bytes.Equal(a.Value, b.Value)
}

func qrespEqual(a, b QResponse) bool {
	if a.Status != b.Status || a.OpID != b.OpID || a.Epoch != b.Epoch ||
		a.TS != b.TS || a.Writer != b.Writer || !bytes.Equal(a.Value, b.Value) ||
		len(a.Members) != len(b.Members) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	return true
}

func TestQRequestRoundTrip(t *testing.T) {
	for name, q := range map[string]QRequest{
		"set": {Op: QOpSet, OpID: 42, Epoch: 3, TS: 17, Writer: 2,
			Key: []byte("sensor/a"), Value: []byte("reading")},
		"get":         {Op: QOpGet, OpID: 7, Epoch: 1, Key: []byte("k")},
		"empty key":   {Op: QOpGet, OpID: 1},
		"empty value": {Op: QOpSet, OpID: 9, TS: 1, Key: []byte("k")},
	} {
		frame, err := AppendQRequest(nil, q)
		if err != nil {
			t.Fatalf("%s: AppendQRequest: %v", name, err)
		}
		typ, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil || typ != TypeQRequest {
			t.Fatalf("%s: ReadFrame: typ=%c err=%v", name, typ, err)
		}
		got, err := ParseQRequest(body)
		if err != nil {
			t.Fatalf("%s: ParseQRequest: %v", name, err)
		}
		if !qreqEqual(got, q) {
			t.Fatalf("%s: qreq = %+v, want %+v", name, got, q)
		}
	}
}

func TestQResponseRoundTrip(t *testing.T) {
	for name, q := range map[string]QResponse{
		"ok get": {Status: QStatusOK, OpID: 42, Epoch: 3, TS: 17, Writer: 2,
			Value: []byte("reading")},
		"stale view": {Status: QStatusStaleView, OpID: 7, Epoch: 4,
			Members: []uint32{0, 1, 3, 5}},
		"bare ack": {Status: QStatusOK, OpID: 1, Epoch: 0, TS: 9, Writer: 1},
		"err":      {Status: QStatusErr, OpID: 3},
	} {
		frame, err := AppendQResponse(nil, q)
		if err != nil {
			t.Fatalf("%s: AppendQResponse: %v", name, err)
		}
		typ, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil || typ != TypeQResponse {
			t.Fatalf("%s: ReadFrame: typ=%c err=%v", name, typ, err)
		}
		got, err := ParseQResponse(body)
		if err != nil {
			t.Fatalf("%s: ParseQResponse: %v", name, err)
		}
		if !qrespEqual(got, q) {
			t.Fatalf("%s: qresp = %+v, want %+v", name, got, q)
		}
	}
}

// TestQOversizeBoundary pins the encode-side guards exactly at their
// caps: the largest admissible key/value/member list encodes, one more
// byte (or ID) is ErrOversize with dst untouched.
func TestQOversizeBoundary(t *testing.T) {
	atLimit := QRequest{Op: QOpSet, Key: make([]byte, MaxQKey), Value: make([]byte, MaxQValue)}
	frame, err := AppendQRequest(nil, atLimit)
	if err != nil {
		t.Fatalf("AppendQRequest at limit: %v", err)
	}
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame))); err != nil {
		t.Fatalf("ReadFrame at limit: %v", err)
	}

	dst := []byte("prefix")
	for name, q := range map[string]QRequest{
		"key":   {Op: QOpSet, Key: make([]byte, MaxQKey+1)},
		"value": {Op: QOpSet, Value: make([]byte, MaxQValue+1)},
	} {
		out, err := AppendQRequest(dst, q)
		if !errors.Is(err, ErrOversize) {
			t.Fatalf("qreq oversize %s: err = %v, want ErrOversize", name, err)
		}
		if !bytes.Equal(out, dst) {
			t.Fatalf("qreq oversize %s: dst mutated", name)
		}
	}

	respAtLimit := QResponse{Value: make([]byte, MaxQValue), Members: make([]uint32, MaxQMembers)}
	frame, err = AppendQResponse(nil, respAtLimit)
	if err != nil {
		t.Fatalf("AppendQResponse at limit: %v", err)
	}
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame))); err != nil {
		t.Fatalf("ReadFrame resp at limit: %v", err)
	}
	for name, q := range map[string]QResponse{
		"value":   {Value: make([]byte, MaxQValue+1)},
		"members": {Members: make([]uint32, MaxQMembers+1)},
	} {
		out, err := AppendQResponse(dst, q)
		if !errors.Is(err, ErrOversize) {
			t.Fatalf("qresp oversize %s: err = %v, want ErrOversize", name, err)
		}
		if !bytes.Equal(out, dst) {
			t.Fatalf("qresp oversize %s: dst mutated", name)
		}
	}
}

// TestParseQRequestRejectsMalformed drives the decode-side guards: every
// wire-supplied length is checked against its cap and the remaining body
// before any allocation, and trailing bytes are an error.
func TestParseQRequestRejectsMalformed(t *testing.T) {
	valid, err := AppendQRequest(nil, QRequest{Op: QOpSet, OpID: 5, Epoch: 1, TS: 2, Writer: 3,
		Key: []byte("key"), Value: []byte("value")})
	if err != nil {
		t.Fatalf("AppendQRequest: %v", err)
	}
	body := valid[5:] // strip length prefix + type byte

	cases := map[string][]byte{
		"empty body":     {},
		"short header":   make([]byte, qreqHeaderSize-1),
		"trailing bytes": append(append([]byte(nil), body...), 0xff),
		"truncated key":  body[:qreqHeaderSize-4+1], // klen says 3, one byte present
	}
	// klen pointing past the body.
	badK := append([]byte(nil), body...)
	binary.LittleEndian.PutUint16(badK[29:], uint16(MaxQKey))
	cases["key length overflow"] = badK
	// vlen pointing past the body (and past the cap).
	badV := append([]byte(nil), body...)
	binary.LittleEndian.PutUint32(badV[31+3:], uint32(MaxQValue+1))
	cases["value length overflow"] = badV

	for name, b := range cases {
		if _, err := ParseQRequest(b); err == nil {
			t.Errorf("ParseQRequest(%s) accepted malformed body", name)
		}
	}
	if q, err := ParseQRequest(body); err != nil || string(q.Key) != "key" || string(q.Value) != "value" {
		t.Fatalf("control: valid body failed to parse: %+v %v", q, err)
	}
}

func TestParseQResponseRejectsMalformed(t *testing.T) {
	valid, err := AppendQResponse(nil, QResponse{Status: QStatusStaleView, OpID: 5, Epoch: 2,
		TS: 1, Writer: 0, Value: []byte("v"), Members: []uint32{0, 2}})
	if err != nil {
		t.Fatalf("AppendQResponse: %v", err)
	}
	body := valid[5:] // strip length prefix + type byte

	cases := map[string][]byte{
		"empty body":        {},
		"short header":      make([]byte, qrespHeaderSize-1),
		"trailing bytes":    append(append([]byte(nil), body...), 0xff),
		"truncated members": body[:len(body)-1],
	}
	badV := append([]byte(nil), body...)
	binary.LittleEndian.PutUint32(badV[29:], uint32(MaxQValue+1))
	cases["value length overflow"] = badV
	badM := append([]byte(nil), body...)
	binary.LittleEndian.PutUint16(badM[33+1:], uint16(MaxQMembers))
	cases["member count overflow"] = badM

	for name, b := range cases {
		if _, err := ParseQResponse(b); err == nil {
			t.Errorf("ParseQResponse(%s) accepted malformed body", name)
		}
	}
	if q, err := ParseQResponse(body); err != nil || len(q.Members) != 2 {
		t.Fatalf("control: valid body failed to parse: %+v %v", q, err)
	}
}

// FuzzQFrameRoundTrip feeds arbitrary bytes through the frame reader
// and, when a Q frame parses, re-encodes it checking for a fixed point —
// the client-facing twin of FuzzFrameRoundTrip, wired into `make fuzz`.
func FuzzQFrameRoundTrip(f *testing.F) {
	reqSeed, _ := AppendQRequest(nil, QRequest{Op: QOpSet, OpID: 1, Epoch: 2, TS: 3, Writer: 4,
		Key: []byte("k"), Value: []byte("v")})
	f.Add(reqSeed)
	respSeed, _ := AppendQResponse(nil, QResponse{Status: QStatusStaleView, OpID: 1, Epoch: 3,
		Members: []uint32{0, 1, 2}})
	f.Add(respSeed)
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		switch typ {
		case TypeQRequest:
			q, err := ParseQRequest(body)
			if err != nil {
				return
			}
			re, err := AppendQRequest(nil, q)
			if err != nil {
				t.Fatalf("re-encode of parsed qreq failed: %v", err)
			}
			typ2, body2, err := ReadFrame(bufio.NewReader(bytes.NewReader(re)))
			if err != nil || typ2 != TypeQRequest {
				t.Fatalf("qreq re-decode: typ=%c err=%v", typ2, err)
			}
			q2, err := ParseQRequest(body2)
			if err != nil || !qreqEqual(q, q2) {
				t.Fatalf("qreq round trip mismatch: %+v vs %+v (%v)", q, q2, err)
			}
		case TypeQResponse:
			q, err := ParseQResponse(body)
			if err != nil {
				return
			}
			re, err := AppendQResponse(nil, q)
			if err != nil {
				t.Fatalf("re-encode of parsed qresp failed: %v", err)
			}
			typ2, body2, err := ReadFrame(bufio.NewReader(bytes.NewReader(re)))
			if err != nil || typ2 != TypeQResponse {
				t.Fatalf("qresp re-decode: typ=%c err=%v", typ2, err)
			}
			q2, err := ParseQResponse(body2)
			if err != nil || !qrespEqual(q, q2) {
				t.Fatalf("qresp round trip mismatch: %+v vs %+v (%v)", q, q2, err)
			}
		}
	})
}
