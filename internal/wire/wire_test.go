package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Cluster: 0xdeadbeefcafe, Node: 7}
	frame := AppendHello(nil, h)
	typ, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != TypeHello {
		t.Fatalf("type = %c, want %c", typ, TypeHello)
	}
	got, err := ParseHello(body)
	if err != nil {
		t.Fatalf("ParseHello: %v", err)
	}
	if got != h {
		t.Fatalf("hello = %+v, want %+v", got, h)
	}
}

func TestHelloRejectsBadMagicAndVersion(t *testing.T) {
	frame := AppendHello(nil, Hello{Cluster: 1, Node: 2})
	body := frame[5:] // skip len+type

	bad := append([]byte(nil), body...)
	bad[0] = 'X'
	if _, err := ParseHello(bad); err == nil {
		t.Fatal("bad magic accepted")
	}

	bad = append([]byte(nil), body...)
	bad[len(Magic)] = Version + 1
	if _, err := ParseHello(bad); err == nil {
		t.Fatal("bad version accepted")
	}

	if _, err := ParseHello(body[:len(body)-1]); err == nil {
		t.Fatal("short hello accepted")
	}
}

func TestMsgRoundTrip(t *testing.T) {
	m := Msg{Class: 1, Src: 2, Dst: 3, From: 4, To: 5, Hops: 6, Payload: []byte("payload")}
	frame, err := AppendMsg(nil, m)
	if err != nil {
		t.Fatalf("AppendMsg: %v", err)
	}
	typ, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != TypeMsg {
		t.Fatalf("type = %c, want %c", typ, TypeMsg)
	}
	got, err := ParseMsg(body)
	if err != nil {
		t.Fatalf("ParseMsg: %v", err)
	}
	if got.Class != m.Class || got.Src != m.Src || got.Dst != m.Dst ||
		got.From != m.From || got.To != m.To || got.Hops != m.Hops ||
		!bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("msg = %+v, want %+v", got, m)
	}
}

func TestMsgEmptyPayload(t *testing.T) {
	frame, err := AppendMsg(nil, Msg{Class: 2})
	if err != nil {
		t.Fatalf("AppendMsg: %v", err)
	}
	_, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	got, err := ParseMsg(body)
	if err != nil {
		t.Fatalf("ParseMsg: %v", err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload = %q, want empty", got.Payload)
	}
}

// TestMsgOversizeBoundary pins the encode-side guard exactly at the
// boundary: the largest admissible payload encodes, one more byte is
// ErrOversize with dst untouched.
func TestMsgOversizeBoundary(t *testing.T) {
	atLimit := Msg{Payload: make([]byte, maxMsgPayload)}
	frame, err := AppendMsg(nil, atLimit)
	if err != nil {
		t.Fatalf("AppendMsg at limit: %v", err)
	}
	if got := binary.LittleEndian.Uint32(frame); got != MaxFrame {
		t.Fatalf("frame length = %d, want %d", got, MaxFrame)
	}
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame))); err != nil {
		t.Fatalf("ReadFrame at limit: %v", err)
	}

	over := Msg{Payload: make([]byte, maxMsgPayload+1)}
	dst := []byte("prefix")
	out, err := AppendMsg(dst, over)
	if !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
	if !bytes.Equal(out, dst) {
		t.Fatal("dst mutated on oversize error")
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	zero := binary.LittleEndian.AppendUint32(nil, 0)
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(zero))); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	huge := binary.LittleEndian.AppendUint32(nil, MaxFrame+1)
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

func TestReadFrameShortBody(t *testing.T) {
	frame := binary.LittleEndian.AppendUint32(nil, 10)
	frame = append(frame, TypeMsg, 1, 2) // 7 bytes missing
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame))); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestParseMsgTruncated(t *testing.T) {
	if _, err := ParseMsg(make([]byte, msgHeaderSize-1)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

// TestStreamOfFrames decodes several back-to-back frames from one
// reader, the shape the connection read loop sees.
func TestStreamOfFrames(t *testing.T) {
	var stream []byte
	stream = AppendHello(stream, Hello{Cluster: 9, Node: 1})
	var err error
	stream, err = AppendMsg(stream, Msg{Class: 1, Payload: []byte("a")})
	if err != nil {
		t.Fatalf("AppendMsg: %v", err)
	}
	stream = AppendHeartbeat(stream)
	stream, err = AppendMsg(stream, Msg{Class: 0, Payload: []byte("bb")})
	if err != nil {
		t.Fatalf("AppendMsg: %v", err)
	}

	r := bufio.NewReader(bytes.NewReader(stream))
	wantTypes := []byte{TypeHello, TypeMsg, TypeHeartbeat, TypeMsg}
	for i, want := range wantTypes {
		typ, _, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != want {
			t.Fatalf("frame %d type = %c, want %c", i, typ, want)
		}
	}
	if _, _, err := ReadFrame(r); err == nil {
		t.Fatal("expected EOF after last frame")
	}
}

// FuzzFrameRoundTrip feeds arbitrary bytes through the frame reader and,
// when a msg parses, re-encodes it checking for a fixed point.
func FuzzFrameRoundTrip(f *testing.F) {
	seed, _ := AppendMsg(nil, Msg{Class: 1, Src: 2, Dst: 3, From: 4, To: 5, Hops: 6, Payload: []byte("x")})
	f.Add(seed)
	f.Add(AppendHello(nil, Hello{Cluster: 1, Node: 2}))
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		switch typ {
		case TypeMsg:
			m, err := ParseMsg(body)
			if err != nil {
				return
			}
			re, err := AppendMsg(nil, m)
			if err != nil {
				t.Fatalf("re-encode of parsed msg failed: %v", err)
			}
			typ2, body2, err := ReadFrame(bufio.NewReader(bytes.NewReader(re)))
			if err != nil || typ2 != TypeMsg {
				t.Fatalf("re-decode: typ=%c err=%v", typ2, err)
			}
			m2, err := ParseMsg(body2)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if m2.Class != m.Class || m2.Src != m.Src || m2.Dst != m.Dst ||
				m2.From != m.From || m2.To != m.To || m2.Hops != m.Hops ||
				!bytes.Equal(m2.Payload, m.Payload) {
				t.Fatalf("round trip mismatch: %+v vs %+v", m, m2)
			}
		case TypeHello:
			if h, err := ParseHello(body); err == nil {
				re := AppendHello(nil, h)
				_, body2, err := ReadFrame(bufio.NewReader(bytes.NewReader(re)))
				if err != nil {
					t.Fatalf("hello re-decode: %v", err)
				}
				h2, err := ParseHello(body2)
				if err != nil || h2 != h {
					t.Fatalf("hello round trip: %+v vs %+v (%v)", h, h2, err)
				}
			}
		}
	})
}
