package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Cluster: 0xdeadbeefcafe, Node: 7}
	frame := AppendHello(nil, h)
	typ, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != TypeHello {
		t.Fatalf("type = %c, want %c", typ, TypeHello)
	}
	got, err := ParseHello(body)
	if err != nil {
		t.Fatalf("ParseHello: %v", err)
	}
	if got != h {
		t.Fatalf("hello = %+v, want %+v", got, h)
	}
}

func TestHelloRejectsBadMagicAndVersion(t *testing.T) {
	frame := AppendHello(nil, Hello{Cluster: 1, Node: 2})
	body := frame[5:] // skip len+type

	bad := append([]byte(nil), body...)
	bad[0] = 'X'
	if _, err := ParseHello(bad); err == nil {
		t.Fatal("bad magic accepted")
	}

	bad = append([]byte(nil), body...)
	bad[len(Magic)] = Version + 1
	if _, err := ParseHello(bad); err == nil {
		t.Fatal("bad version accepted")
	}

	if _, err := ParseHello(body[:len(body)-1]); err == nil {
		t.Fatal("short hello accepted")
	}
}

func TestMsgRoundTrip(t *testing.T) {
	m := Msg{Class: 1, Src: 2, Dst: 3, From: 4, To: 5, Hops: 6, Payload: []byte("payload")}
	frame, err := AppendMsg(nil, m)
	if err != nil {
		t.Fatalf("AppendMsg: %v", err)
	}
	typ, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != TypeMsg {
		t.Fatalf("type = %c, want %c", typ, TypeMsg)
	}
	got, err := ParseMsg(body)
	if err != nil {
		t.Fatalf("ParseMsg: %v", err)
	}
	if got.Class != m.Class || got.Src != m.Src || got.Dst != m.Dst ||
		got.From != m.From || got.To != m.To || got.Hops != m.Hops ||
		!bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("msg = %+v, want %+v", got, m)
	}
}

func TestMsgEmptyPayload(t *testing.T) {
	frame, err := AppendMsg(nil, Msg{Class: 2})
	if err != nil {
		t.Fatalf("AppendMsg: %v", err)
	}
	_, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	got, err := ParseMsg(body)
	if err != nil {
		t.Fatalf("ParseMsg: %v", err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload = %q, want empty", got.Payload)
	}
}

// TestMsgOversizeBoundary pins the encode-side guard exactly at the
// boundary: the largest admissible payload encodes, one more byte is
// ErrOversize with dst untouched.
func TestMsgOversizeBoundary(t *testing.T) {
	atLimit := Msg{Payload: make([]byte, MaxMsgPayload)}
	frame, err := AppendMsg(nil, atLimit)
	if err != nil {
		t.Fatalf("AppendMsg at limit: %v", err)
	}
	if got := binary.LittleEndian.Uint32(frame); got != MaxFrame {
		t.Fatalf("frame length = %d, want %d", got, MaxFrame)
	}
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame))); err != nil {
		t.Fatalf("ReadFrame at limit: %v", err)
	}

	over := Msg{Payload: make([]byte, MaxMsgPayload+1)}
	dst := []byte("prefix")
	out, err := AppendMsg(dst, over)
	if !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
	if !bytes.Equal(out, dst) {
		t.Fatal("dst mutated on oversize error")
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	zero := binary.LittleEndian.AppendUint32(nil, 0)
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(zero))); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	huge := binary.LittleEndian.AppendUint32(nil, MaxFrame+1)
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

func TestReadFrameShortBody(t *testing.T) {
	frame := binary.LittleEndian.AppendUint32(nil, 10)
	frame = append(frame, TypeMsg, 1, 2) // 7 bytes missing
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame))); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestParseMsgTruncated(t *testing.T) {
	if _, err := ParseMsg(make([]byte, msgHeaderSize-1)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

// TestStreamOfFrames decodes several back-to-back frames from one
// reader, the shape the connection read loop sees.
func TestStreamOfFrames(t *testing.T) {
	var stream []byte
	stream = AppendHello(stream, Hello{Cluster: 9, Node: 1})
	var err error
	stream, err = AppendMsg(stream, Msg{Class: 1, Payload: []byte("a")})
	if err != nil {
		t.Fatalf("AppendMsg: %v", err)
	}
	stream = AppendHeartbeat(stream)
	stream, err = AppendMsg(stream, Msg{Class: 0, Payload: []byte("bb")})
	if err != nil {
		t.Fatalf("AppendMsg: %v", err)
	}

	r := bufio.NewReader(bytes.NewReader(stream))
	wantTypes := []byte{TypeHello, TypeMsg, TypeHeartbeat, TypeMsg}
	for i, want := range wantTypes {
		typ, _, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != want {
			t.Fatalf("frame %d type = %c, want %c", i, typ, want)
		}
	}
	if _, _, err := ReadFrame(r); err == nil {
		t.Fatal("expected EOF after last frame")
	}
}

func batchEqual(a, b []Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Class != b[i].Class || a[i].Src != b[i].Src || a[i].Dst != b[i].Dst ||
			a[i].From != b[i].From || a[i].To != b[i].To || a[i].Hops != b[i].Hops ||
			!bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}

func TestBatchRoundTrip(t *testing.T) {
	ms := []Msg{
		{Class: 1, Src: 1, Dst: 2, From: 1, To: 2, Hops: 0, Payload: []byte("evidence blob")},
		{Class: 0, Src: 3, Dst: 4, From: 3, To: 4, Hops: 7, Payload: nil},
		{Class: 1, Src: 5, Dst: 6, From: 5, To: 6, Hops: 2, Payload: bytes.Repeat([]byte("x"), 4096)},
	}
	frame, n, err := AppendBatch(nil, ms)
	if err != nil || n != len(ms) {
		t.Fatalf("AppendBatch = (n=%d, %v), want all %d", n, err, len(ms))
	}
	typ, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil || typ != TypeBatch {
		t.Fatalf("ReadFrame: typ=%c err=%v", typ, err)
	}
	got, err := ParseBatch(body)
	if err != nil {
		t.Fatalf("ParseBatch: %v", err)
	}
	if !batchEqual(ms, got) {
		t.Fatalf("batch round trip mismatch")
	}
}

func TestAppendBatchEmpty(t *testing.T) {
	frame, n, err := AppendBatch(nil, nil)
	if err != nil || n != 0 || len(frame) != 0 {
		t.Fatalf("AppendBatch(nil) = (%d bytes, n=%d, %v), want nothing", len(frame), n, err)
	}
}

func TestAppendBatchChunksAtMaxFrame(t *testing.T) {
	// Four messages of ~a third of MaxFrame each cannot share one frame;
	// AppendBatch must close the frame before overflowing and report how
	// far it got, so a draining loop emits several valid frames.
	big := bytes.Repeat([]byte("p"), MaxFrame/3)
	ms := make([]Msg, 4)
	for i := range ms {
		ms[i] = Msg{Class: 1, Src: uint32(i), Payload: big}
	}
	var stream []byte
	total := 0
	for total < len(ms) {
		var n int
		var err error
		stream, n, err = AppendBatch(stream, ms[total:])
		if err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
		if n == 0 {
			t.Fatalf("AppendBatch consumed nothing at offset %d", total)
		}
		total += n
	}
	r := bufio.NewReader(bytes.NewReader(stream))
	var got []Msg
	for {
		typ, body, err := ReadFrame(r)
		if err != nil {
			break
		}
		if typ != TypeBatch {
			t.Fatalf("unexpected frame type %c", typ)
		}
		part, err := ParseBatch(body)
		if err != nil {
			t.Fatalf("ParseBatch: %v", err)
		}
		if len(body)+4 > MaxFrame+4 {
			t.Fatalf("emitted frame exceeds MaxFrame")
		}
		got = append(got, part...)
	}
	if !batchEqual(ms, got) {
		t.Fatalf("chunked batch stream did not reassemble: got %d msgs", len(got))
	}
}

func TestAppendBatchOversizePayload(t *testing.T) {
	over := Msg{Class: 1, Payload: make([]byte, MaxFrame)}
	if _, n, err := AppendBatch(nil, []Msg{over}); err == nil || n != 0 {
		t.Fatalf("AppendBatch(oversize first) = (n=%d, %v), want ErrOversize", n, err)
	}
	// An oversize message mid-queue: the valid prefix is emitted, the
	// error surfaces on the next call.
	ms := []Msg{{Class: 1, Payload: []byte("ok")}, over}
	frame, n, err := AppendBatch(nil, ms)
	if err != nil || n != 1 {
		t.Fatalf("AppendBatch(ok, oversize) = (n=%d, %v), want (1, nil)", n, err)
	}
	if _, _, err := AppendBatch(frame, ms[1:]); err == nil {
		t.Fatalf("AppendBatch(oversize tail) did not error")
	}
}

func TestParseBatchRejectsMalformed(t *testing.T) {
	valid, _, err := AppendBatch(nil, []Msg{{Class: 1, Payload: []byte("abc")}})
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	body := valid[5:] // strip length prefix + type byte
	cases := map[string][]byte{
		"empty body":      {},
		"one byte":        {1},
		"zero count":      {0, 0},
		"truncated entry": append([]byte{2, 0}, body[2:]...),
		"trailing bytes":  append(append([]byte(nil), body...), 0xff),
	}
	// Corrupt the payload length field of the single entry upward.
	badLen := append([]byte(nil), body...)
	badLen[2+19] = 0xff
	badLen[2+19+3] = 0xff
	cases["payload length overflow"] = badLen
	for name, b := range cases {
		if _, err := ParseBatch(b); err == nil {
			t.Errorf("ParseBatch(%s) accepted malformed body", name)
		}
	}
	if ms, err := ParseBatch(body); err != nil || len(ms) != 1 || !bytes.Equal(ms[0].Payload, []byte("abc")) {
		t.Fatalf("control: valid body failed to parse: %v", err)
	}
}

// FuzzFrameRoundTrip feeds arbitrary bytes through the frame reader and,
// when a msg parses, re-encodes it checking for a fixed point.
func FuzzFrameRoundTrip(f *testing.F) {
	seed, _ := AppendMsg(nil, Msg{Class: 1, Src: 2, Dst: 3, From: 4, To: 5, Hops: 6, Payload: []byte("x")})
	f.Add(seed)
	f.Add(AppendHello(nil, Hello{Cluster: 1, Node: 2}))
	batchSeed, _, _ := AppendBatch(nil, []Msg{{Class: 1, Payload: []byte("a")}, {Class: 0, Src: 7, Payload: []byte("bb")}})
	f.Add(batchSeed)
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		switch typ {
		case TypeMsg:
			m, err := ParseMsg(body)
			if err != nil {
				return
			}
			re, err := AppendMsg(nil, m)
			if err != nil {
				t.Fatalf("re-encode of parsed msg failed: %v", err)
			}
			typ2, body2, err := ReadFrame(bufio.NewReader(bytes.NewReader(re)))
			if err != nil || typ2 != TypeMsg {
				t.Fatalf("re-decode: typ=%c err=%v", typ2, err)
			}
			m2, err := ParseMsg(body2)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if m2.Class != m.Class || m2.Src != m.Src || m2.Dst != m.Dst ||
				m2.From != m.From || m2.To != m.To || m2.Hops != m.Hops ||
				!bytes.Equal(m2.Payload, m.Payload) {
				t.Fatalf("round trip mismatch: %+v vs %+v", m, m2)
			}
		case TypeBatch:
			ms, err := ParseBatch(body)
			if err != nil {
				return
			}
			re, n, err := AppendBatch(nil, ms)
			if err != nil || n != len(ms) {
				t.Fatalf("re-encode of parsed batch failed: n=%d err=%v", n, err)
			}
			typ2, body2, err := ReadFrame(bufio.NewReader(bytes.NewReader(re)))
			if err != nil || typ2 != TypeBatch {
				t.Fatalf("batch re-decode: typ=%c err=%v", typ2, err)
			}
			ms2, err := ParseBatch(body2)
			if err != nil || !batchEqual(ms, ms2) {
				t.Fatalf("batch round trip mismatch (%v)", err)
			}
		case TypeHello:
			if h, err := ParseHello(body); err == nil {
				re := AppendHello(nil, h)
				_, body2, err := ReadFrame(bufio.NewReader(bytes.NewReader(re)))
				if err != nil {
					t.Fatalf("hello re-decode: %v", err)
				}
				h2, err := ParseHello(body2)
				if err != nil || h2 != h {
					t.Fatalf("hello round trip: %+v vs %+v (%v)", h, h2, err)
				}
			}
		}
	})
}

// The coalescing benchmarks quantify what batching buys at the codec
// layer: one batch frame for n messages vs n msg frames.
func benchMsgs(n int) []Msg {
	ms := make([]Msg, n)
	for i := range ms {
		ms[i] = Msg{Class: 1, Src: uint32(i), Dst: 1, From: uint32(i), To: 1, Hops: 1, Payload: bytes.Repeat([]byte{byte(i)}, 256)}
	}
	return ms
}

func BenchmarkAppendMsg64(b *testing.B) {
	ms := benchMsgs(64)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for j := range ms {
			var err error
			buf, err = AppendMsg(buf, ms[j])
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAppendBatch64(b *testing.B) {
	ms := benchMsgs(64)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		rest := ms
		for len(rest) > 0 {
			var n int
			var err error
			buf, n, err = AppendBatch(buf, rest)
			if err != nil || n == 0 {
				b.Fatal(err)
			}
			rest = rest[n:]
		}
	}
}

func BenchmarkParseBatch64(b *testing.B) {
	frame, n, err := AppendBatch(nil, benchMsgs(64))
	if err != nil || n != 64 {
		b.Fatalf("AppendBatch: n=%d err=%v", n, err)
	}
	body := frame[5:] // strip len prefix + type byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseBatch(body); err != nil {
			b.Fatal(err)
		}
	}
}
