package member

import (
	"strings"
	"testing"

	"btr/internal/network"
)

// mustPanicInvariant runs fn and asserts it panics with the named
// MaxElems invariant — the encode-side overflow guard. On pre-guard
// code fn instead returns a silently-truncated encoding, so this test
// fails there.
func mustPanicInvariant(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oversized section encoded without panicking (count was truncated on the wire)")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant MaxElems") {
			t.Fatalf("panic %v, want named MaxElems invariant", r)
		}
	}()
	fn()
}

// membersOfLen builds a sorted-unique member slice of length n.
func membersOfLen(n int) []network.NodeID {
	m := make([]network.NodeID, n)
	for i := range m {
		m[i] = network.NodeID(i)
	}
	return m
}

// TestRecordEncodeAtCountBoundary proves the boundary is exact: MaxElems
// members encode and round-trip; one more panics instead of truncating
// the uint16 count to 0.
func TestRecordEncodeAtCountBoundary(t *testing.T) {
	r := Record{Num: 1, Members: membersOfLen(MaxElems)}
	b := r.Encode()
	got, err := DecodeRecord(b)
	if err != nil {
		t.Fatalf("decode at boundary: %v", err)
	}
	if len(got.Members) != MaxElems {
		t.Fatalf("round-tripped %d members, want %d", len(got.Members), MaxElems)
	}

	r.Members = membersOfLen(MaxElems + 1)
	mustPanicInvariant(t, func() { r.Encode() })
}

func TestRecordEncodeGuardsLinkSections(t *testing.T) {
	links := make([]network.Link, MaxElems+1)
	for i := range links {
		links[i] = network.Link{A: 0, B: 1, Bandwidth: 1, Prop: 0}
	}
	r := Record{Num: 1, Members: membersOfLen(3), AddLinks: links}
	mustPanicInvariant(t, func() { r.Encode() })

	drops := make([][2]network.NodeID, MaxElems+1)
	for i := range drops {
		drops[i] = [2]network.NodeID{0, 1}
	}
	r = Record{Num: 1, Members: membersOfLen(3), DropLinks: drops}
	mustPanicInvariant(t, func() { r.Encode() })
}
