package member

import (
	"fmt"
	"sync"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plan/cache"
)

// EpochPlan is everything the runtime needs to execute one epoch: the
// committed record, the active wiring, and the per-epoch strategy plus
// fault resolver (plans cover member fault patterns up to F, each plan
// additionally excluding the dormant slots).
type EpochPlan struct {
	Record   Record
	Members  []network.NodeID
	Excluded plan.FaultSet
	// Wiring is the epoch's *active* wiring: the administrative link
	// state restricted to links among members. Transports carry exactly
	// this — dormant slots get no lanes, traffic never routes through
	// them, and retiring a node tears its lanes down at activation.
	Wiring   *network.Topology
	Strategy *plan.Strategy
	// Resolve is the epoch-aware runtime.PlanSource: member faults union
	// the epoch's exclusions, with the engine's bounded fallback.
	Resolve func(plan.FaultSet) *plan.Plan
}

// activeWiring restricts an administrative wiring to the links whose
// both endpoints are members (the slot count is preserved; dormant
// slots become isolated vertices).
func activeWiring(wiring *network.Topology, members []network.NodeID) *network.Topology {
	in := make(map[network.NodeID]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	var links []network.Link
	for _, l := range wiring.Links {
		if in[l.A] && in[l.B] {
			links = append(links, l)
		}
	}
	return network.NewTopology(wiring.N, links)
}

// Planner turns epoch records into EpochPlans through the incremental
// plan engine. All epochs of a deployment (and, when the cache is
// shared, all deployments of a campaign) draw from one content-
// addressed plan cache, so re-planning an epoch that differs from its
// predecessor by one slot is a delta repair, and replaying a whole
// churn sequence warm synthesizes nothing. Safe for use from scheduler
// callbacks (single goroutine); the internal lock only guards the
// engine table against concurrent deployments sharing a Planner.
type Planner struct {
	base *flow.Graph
	opts plan.Options
	c    *cache.Cache

	mu      sync.Mutex
	engines map[*network.Topology]*cache.Engine
	epochs  map[[16]byte]*EpochPlan
}

// NewPlanner builds a planner for one workload/options pair. A nil
// cache gets a private one; campaigns pass a shared cache so same-shape
// deployments reuse each other's epochs.
func NewPlanner(base *flow.Graph, opts plan.Options, c *cache.Cache) *Planner {
	if c == nil {
		c = cache.New()
	}
	return &Planner{
		base:    base,
		opts:    opts.Normalized(),
		c:       c,
		engines: map[*network.Topology]*cache.Engine{},
		epochs:  map[[16]byte]*EpochPlan{},
	}
}

// engineFor returns (building on demand) the engine for a wiring.
// Wirings are compared by identity: the Log hands out one Topology per
// epoch, and the cache keys embed a full topology fingerprint anyway,
// so a duplicate engine costs only its construction.
func (p *Planner) engineFor(wiring *network.Topology) *cache.Engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	eng, ok := p.engines[wiring]
	if !ok {
		eng = cache.NewEngine(p.base, wiring, p.opts, p.c)
		p.engines[wiring] = eng
	}
	return eng
}

// ForEpoch builds the EpochPlan for a record under the given wiring
// (the Log's post-record wiring). Pure in (record, wiring): a warm
// cache returns byte-identical plans.
func (p *Planner) ForEpoch(rec Record, wiring *network.Topology) (*EpochPlan, error) {
	id := rec.ID()
	p.mu.Lock()
	if ep, ok := p.epochs[id]; ok {
		p.mu.Unlock()
		return ep, nil
	}
	p.mu.Unlock()
	view := p.engineFor(wiring).View(rec.Members)
	strat, err := view.BuildStrategy()
	if err != nil {
		return nil, fmt.Errorf("member: epoch %d unplannable: %w", rec.Num, err)
	}
	ep := &EpochPlan{
		Record:   rec,
		Members:  view.Members(),
		Excluded: view.Excluded(),
		Wiring:   activeWiring(wiring, rec.Members),
		Strategy: strat,
		Resolve:  view.Resolve,
	}
	p.mu.Lock()
	p.epochs[id] = ep
	p.mu.Unlock()
	return ep, nil
}

// Replans returns the total number of plan syntheses performed so far
// across every epoch engine — 0 on a fully warm cache. The perf bundle
// records the cold and warm values of a churn sequence and
// btrcheckbench gates the warm one at zero.
func (p *Planner) Replans() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total uint64
	for _, eng := range p.engines {
		total += eng.Stats().Misses
	}
	return total
}
