package member

import (
	"bytes"
	"testing"

	"btr/internal/network"
	"btr/internal/sig"
	"btr/internal/sim"
)

func sampleRecord() Record {
	return Record{
		Num:        3,
		Prev:       [16]byte{1, 2, 3, 4},
		ActivateAt: 2500 * sim.Millisecond,
		Members:    []network.NodeID{0, 1, 2, 4, 7},
		AddLinks:   []network.Link{{A: 4, B: 7, Bandwidth: 20_000_000, Prop: 50}},
		DropLinks:  [][2]network.NodeID{{3, 0}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := sampleRecord()
	enc := r.Encode()
	if len(enc) != r.EncodedSize() {
		t.Fatalf("EncodedSize %d != len(Encode) %d", r.EncodedSize(), len(enc))
	}
	got, err := DecodeRecord(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("decode∘encode is not the identity")
	}
	if got.Num != r.Num || got.ActivateAt != r.ActivateAt || got.Prev != r.Prev {
		t.Fatalf("fields mangled: %+v", got)
	}
	if got.ID() != r.ID() {
		t.Fatal("ID not stable across round trip")
	}
}

func TestRecordDecodeRejectsMalformed(t *testing.T) {
	r := sampleRecord()
	enc := r.Encode()
	cases := map[string][]byte{
		"empty":        {},
		"magic":        append([]byte("xx1"), enc[3:]...),
		"truncated":    enc[:len(enc)-3],
		"trailing":     append(append([]byte(nil), enc...), 0),
		"emptyMembers": Record{Num: 1, Members: nil}.Encode(),
	}
	// Unsorted members.
	bad := sampleRecord()
	bad.Members = []network.NodeID{2, 1}
	cases["unsorted"] = bad.Encode()
	dup := sampleRecord()
	dup.Members = []network.NodeID{1, 1}
	cases["duplicate"] = dup.Encode()
	selfLink := sampleRecord()
	selfLink.AddLinks = []network.Link{{A: 2, B: 2, Bandwidth: 5, Prop: 1}}
	cases["selfLink"] = selfLink.Encode()
	zeroBW := sampleRecord()
	zeroBW.AddLinks = []network.Link{{A: 1, B: 2, Bandwidth: 0, Prop: 1}}
	cases["zeroBandwidth"] = zeroBW.Encode()
	for name, b := range cases {
		if _, err := DecodeRecord(b); err == nil {
			t.Errorf("%s: malformed record decoded without error", name)
		}
	}
}

func TestSealOpen(t *testing.T) {
	reg := sig.NewRegistry(1, 6)
	r := sampleRecord()
	sealed := Seal(reg, r)
	got, err := Open(reg, sealed)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if got.ID() != r.ID() {
		t.Fatal("sealed record mangled")
	}
	// Bit flip anywhere (body or signature) must be rejected.
	for _, i := range []int{0, 10, len(sealed) - sig.SignatureSize - 1, len(sealed) - 1} {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 0x40
		if _, err := Open(reg, mut); err == nil {
			t.Errorf("bit flip at %d accepted", i)
		}
	}
	// Truncation must be rejected.
	for _, n := range []int{0, 5, len(sealed) - 1} {
		if _, err := Open(reg, sealed[:n]); err == nil {
			t.Errorf("truncation to %d accepted", n)
		}
	}
	// A node key must not seal records (only the operator can).
	forged := append(r.Encode(), reg.Sign(0, r.Encode())...)
	if _, err := Open(reg, forged); err == nil {
		t.Fatal("node-signed record accepted as operator-sealed")
	}
}

func TestWithActivationChangesIDOnly(t *testing.T) {
	r := sampleRecord()
	c := r.WithActivation(9999)
	if c.ID() == r.ID() {
		t.Fatal("activation instant not covered by the record ID")
	}
	if c.Num != r.Num || len(c.Members) != len(r.Members) {
		t.Fatal("WithActivation mangled fields")
	}
	c.Members[0] = 99
	if r.Members[0] == 99 {
		t.Fatal("WithActivation aliases the original's members")
	}
}

// FuzzEpochRoundTrip fuzzes the epoch-record wire codec: every decoded
// record must re-encode to the identical bytes (decode∘encode identity
// on the accepted set), truncations and bit flips of sealed records
// must be rejected by Open, and stale records must be rejected by the
// chain (replay protection). Wired into `make fuzz`.
func FuzzEpochRoundTrip(f *testing.F) {
	f.Add(sampleRecord().Encode())
	f.Add(Genesis([]network.NodeID{0, 1, 2}).Encode())
	f.Add([]byte{})
	f.Add([]byte("me1junk"))
	reg := sig.NewRegistry(1, 4)
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeRecord(b)
		if err == nil {
			// Decode∘encode identity: the codec is canonical.
			if !bytes.Equal(r.Encode(), b) {
				t.Fatalf("decode∘encode not identity: %x -> %x", b, r.Encode())
			}
			// Sealing and reopening preserves the record.
			sealed := Seal(reg, r)
			got, err := Open(reg, sealed)
			if err != nil {
				t.Fatalf("sealed valid record rejected: %v", err)
			}
			if got.ID() != r.ID() {
				t.Fatal("seal/open changed the record")
			}
			// Bit-flipped seal is rejected.
			mut := append([]byte(nil), sealed...)
			mut[len(mut)/2] ^= 1
			if _, err := Open(reg, mut); err == nil {
				t.Fatal("bit-flipped sealed record accepted")
			}
			if len(sealed) > 1 {
				if _, err := Open(reg, sealed[:len(sealed)-1]); err == nil {
					t.Fatal("truncated sealed record accepted")
				}
			}
		}
		// Raw fuzz input must never open (it carries no valid operator
		// signature).
		if _, err := Open(reg, b); err == nil {
			t.Fatalf("unsigned input opened: %x", b)
		}
	})
}
