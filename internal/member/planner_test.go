package member

import (
	"testing"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plan/cache"
	"btr/internal/sim"
)

func plannerFixture() (*Planner, *Log) {
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	p := NewPlanner(g, plan.DefaultOptions(1, 500*sim.Millisecond), cache.New())
	l, err := NewLog(network.FullMesh(8, 20_000_000, 50*sim.Microsecond),
		Genesis([]network.NodeID{0, 1, 2, 3, 4, 5}))
	if err != nil {
		panic(err)
	}
	return p, l
}

func TestPlannerForEpoch(t *testing.T) {
	p, l := plannerFixture()
	ep, err := p.ForEpoch(l.Current(), l.Wiring())
	if err != nil {
		t.Fatalf("genesis epoch: %v", err)
	}
	if ep.Excluded.Key() != "6,7" {
		t.Fatalf("excluded = %q, want 6,7", ep.Excluded.Key())
	}
	if !ep.Strategy.RFeasible() {
		t.Fatalf("genesis epoch infeasible: R needed %v", ep.Strategy.RNeeded)
	}
	// The base plan places nothing on dormant slots.
	base := ep.Strategy.Plans[""]
	for id, node := range base.Assign {
		if node == 6 || node == 7 {
			t.Fatalf("replica %s placed on dormant slot %d", id, node)
		}
	}
	// Member fault resolution excludes the dormant slots too.
	fp := ep.Resolve(plan.NewFaultSet(3))
	if fp == nil {
		t.Fatal("member-fault resolve failed")
	}
	for id, node := range fp.Assign {
		if node == 3 || node == 6 || node == 7 {
			t.Fatalf("fault-mode replica %s placed on excluded slot %d", id, node)
		}
	}
}

func TestPlannerWarmChurnReplansNothing(t *testing.T) {
	shared := cache.New()
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	churn := func() *Planner {
		p := NewPlanner(g, plan.DefaultOptions(1, 500*sim.Millisecond), shared)
		l, err := NewLog(network.FullMesh(8, 20_000_000, 50*sim.Microsecond),
			Genesis([]network.NodeID{0, 1, 2, 3, 4, 5}))
		if err != nil {
			t.Fatal(err)
		}
		step := func(d Delta) {
			r, err := l.Propose(d)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Append(r.WithActivation(sim.Time(100 * l.NextNum()))); err != nil {
				t.Fatal(err)
			}
			if _, err := p.ForEpoch(l.Current(), l.Wiring()); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.ForEpoch(l.Current(), l.Wiring()); err != nil {
			t.Fatal(err)
		}
		step(Delta{Join: []network.NodeID{6}})
		step(Delta{Retire: []network.NodeID{0}})
		step(Delta{Join: []network.NodeID{7}, Retire: []network.NodeID{1}})
		return p
	}
	cold := churn()
	if cold.Replans() == 0 {
		t.Fatal("cold churn synthesized nothing; warm assertion would be vacuous")
	}
	warm := churn()
	if n := warm.Replans(); n != 0 {
		t.Fatalf("warm churn replay synthesized %d plan(s); want 0", n)
	}
}
