package member

import (
	"testing"

	"btr/internal/network"
	"btr/internal/sim"
)

func universe() *network.Topology {
	return network.FullMesh(8, 20_000_000, 50*sim.Microsecond)
}

func mustLog(t *testing.T, members ...network.NodeID) *Log {
	t.Helper()
	l, err := NewLog(universe(), Genesis(members))
	if err != nil {
		t.Fatalf("genesis: %v", err)
	}
	return l
}

func TestLogProposeAppendChain(t *testing.T) {
	l := mustLog(t, 0, 1, 2, 3, 4, 5)
	if l.Epoch() != 0 || l.NextNum() != 1 {
		t.Fatalf("genesis epoch state wrong: %d/%d", l.Epoch(), l.NextNum())
	}
	// Join 6.
	r1, err := l.Propose(Delta{Join: []network.NodeID{6}})
	if err != nil {
		t.Fatalf("propose join: %v", err)
	}
	if err := l.Append(r1.WithActivation(100)); err != nil {
		t.Fatalf("append join: %v", err)
	}
	if got := l.Members(); len(got) != 7 || got[6] != 6 {
		t.Fatalf("join not applied: %v", got)
	}
	// Replace 2 -> 7.
	r2, err := l.Propose(Delta{Join: []network.NodeID{7}, Retire: []network.NodeID{2}})
	if err != nil {
		t.Fatalf("propose replace: %v", err)
	}
	if err := l.Append(r2.WithActivation(200)); err != nil {
		t.Fatalf("append replace: %v", err)
	}
	want := []network.NodeID{0, 1, 3, 4, 5, 6, 7}
	got := l.Members()
	if len(got) != len(want) {
		t.Fatalf("replace membership: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replace membership: %v, want %v", got, want)
		}
	}
	if l.Epoch() != 2 || l.Len() != 3 {
		t.Fatalf("chain length wrong: epoch %d len %d", l.Epoch(), l.Len())
	}
}

func TestLogRejectsReplayStaleAndForks(t *testing.T) {
	l := mustLog(t, 0, 1, 2, 3, 4, 5)
	r1, _ := l.Propose(Delta{Join: []network.NodeID{6}})
	c1 := r1.WithActivation(100)
	if err := l.Append(c1); err != nil {
		t.Fatal(err)
	}
	// Replay of the same record: stale num.
	if err := l.Append(c1); err == nil {
		t.Fatal("replayed record accepted")
	}
	// A record skipping ahead.
	r3 := c1
	r3.Num = 3
	if err := l.Append(r3); err == nil {
		t.Fatal("future record accepted")
	}
	// Correct num but wrong predecessor hash (fork).
	fork, _ := l.Propose(Delta{Retire: []network.NodeID{6}})
	fork.Prev = [16]byte{0xde, 0xad}
	if err := l.Append(fork.WithActivation(300)); err == nil {
		t.Fatal("forked record accepted")
	}
}

func TestLogRejectsIllegalMemberships(t *testing.T) {
	if _, err := NewLog(universe(), Genesis(nil)); err == nil {
		t.Fatal("empty genesis accepted")
	}
	if _, err := NewLog(universe(), Genesis([]network.NodeID{0, 9})); err == nil {
		t.Fatal("out-of-universe genesis member accepted")
	}
	l := mustLog(t, 0, 1, 2, 3, 4, 5)
	if _, err := l.Propose(Delta{Join: []network.NodeID{3}}); err == nil {
		t.Fatal("joining an existing member accepted")
	}
	if _, err := l.Propose(Delta{Retire: []network.NodeID{7}}); err == nil {
		t.Fatal("retiring a non-member accepted")
	}
	if _, err := l.Propose(Delta{DropLinks: [][2]network.NodeID{{0, 9}}}); err == nil {
		t.Fatal("dropping a nonexistent link accepted")
	}
}

func TestLogRejectsDisconnectingDeltas(t *testing.T) {
	// Line universe: retiring an interior member splits the membership.
	line := network.Line(5, 20_000_000, 50*sim.Microsecond)
	l, err := NewLog(line, Genesis([]network.NodeID{0, 1, 2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Propose(Delta{Retire: []network.NodeID{2}}); err == nil {
		t.Fatal("membership-splitting retire accepted")
	}
	// Adding a bypass link first makes the same retire legal.
	r, err := l.Propose(Delta{
		Retire:   []network.NodeID{2},
		AddLinks: []network.Link{{A: 1, B: 3, Bandwidth: 20_000_000, Prop: 50}},
	})
	if err != nil {
		t.Fatalf("bridged retire rejected: %v", err)
	}
	if err := l.Append(r.WithActivation(50)); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Wiring().LinkBetween(1, 3); !ok {
		t.Fatal("added link missing from the epoch wiring")
	}
}

func TestQuorum(t *testing.T) {
	for _, tc := range []struct{ n, f, want int }{
		{6, 1, 5}, {6, 2, 4}, {3, 2, 1}, {1, 1, 1}, {2, 5, 1},
	} {
		if got := Quorum(tc.n, tc.f); got != tc.want {
			t.Errorf("Quorum(%d,%d) = %d, want %d", tc.n, tc.f, got, tc.want)
		}
	}
}
