// Package member implements BTR's online membership layer: signed,
// monotonically-numbered epoch records describing which node slots are
// active (and any administrative link changes), a hash-chained log that
// validates and applies them, and a planner that turns each epoch into a
// full per-epoch recovery strategy through the incremental plan engine.
//
// The design follows the "fault masking and reconfiguration are the same
// mechanism at different timescales" observation (Helland & Campbell,
// Building on Quicksand): planning-wise a retired slot is exactly a
// permanently excluded node, so epoch re-planning rides the same
// canonical-predecessor delta chain the fault planner uses, and a warm
// cache replays whole churn sequences without synthesizing anything.
//
// Trust model and soundness: epoch records are signed by the operator
// key (sig.Registry's configuration authority), which the Byzantine
// adversary never controls — compromised nodes cannot forge, replay, or
// reorder reconfigurations (the chain binds each record to its
// predecessor's content hash, and logs accept only the next number).
// Node slots keep their identities and keys across epochs and are never
// reassigned — a "replacement" is a fresh slot joining plus the old slot
// retiring — so evidence signed in a prior epoch remains attributable
// forever: a signature over a record names the same physical signer in
// every epoch, and fault sets stay append-only across reconfigurations.
package member

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"btr/internal/network"
	"btr/internal/sig"
	"btr/internal/sim"
)

// Record is one membership epoch: the full active-member set after the
// epoch activates, plus an administrative link delta relative to the
// predecessor epoch's wiring. Records are immutable wire artifacts;
// State/Log derive everything else.
type Record struct {
	// Num is the epoch number: 0 for genesis, then strictly +1.
	Num uint64
	// Prev is the predecessor record's content ID (zero for genesis),
	// chaining the log so stale or replayed records are rejectable
	// without any global state.
	Prev [16]byte
	// ActivateAt is the scheduled activation instant. It is zero in the
	// prepare phase; the commit record carries the final instant every
	// correct node switches at.
	ActivateAt sim.Time
	// Members lists the active slots once this epoch activates (sorted,
	// unique; enforced by the codec).
	Members []network.NodeID
	// AddLinks and DropLinks administratively change the wiring
	// (commissioning a cable alongside a joining slot, retiring one with
	// a leaving slot). Deltas apply to the predecessor epoch's wiring.
	AddLinks  []network.Link
	DropLinks [][2]network.NodeID
}

// recordMagic versions the wire format.
const recordMagic = "me1"

// errTruncated rejects short inputs before any field parsing.
var errTruncated = errors.New("member: truncated record")

// EncodedSize returns len(Encode()) without encoding.
func (r Record) EncodedSize() int {
	return len(recordMagic) + 8 + 16 + 8 +
		2 + 4*len(r.Members) +
		2 + 24*len(r.AddLinks) +
		2 + 8*len(r.DropLinks)
}

// MaxElems is the largest element count a record section (Members,
// AddLinks, DropLinks) can carry: the counts travel as uint16, so
// anything larger cannot round-trip. AppendTo enforces it as an
// invariant — the earlier behavior silently truncated the count through
// uint16(...), emitting a frame that decodes to a different record and
// surfaces as an inexplicable signature/framing mismatch at the
// receiver.
const MaxElems = 1<<16 - 1

// checkElems panics with the named invariant when a section exceeds the
// wire format's count range. Record construction is operator-side
// harness code, so an oversized section is a programming error, not
// adversarial input — panicking at the encode site beats shipping a
// frame that cannot decode.
func checkElems(section string, n int) {
	if n > MaxElems {
		panic(fmt.Sprintf("member: invariant MaxElems violated: %d %s > %d", n, section, MaxElems))
	}
}

// AppendTo appends the record's canonical encoding to dst. Section
// counts beyond MaxElems panic (invariant MaxElems) instead of
// truncating on the wire.
func (r Record) AppendTo(dst []byte) []byte {
	checkElems("members", len(r.Members))
	checkElems("added links", len(r.AddLinks))
	checkElems("dropped links", len(r.DropLinks))
	dst = append(dst, recordMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, r.Num)
	dst = append(dst, r.Prev[:]...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.ActivateAt))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Members)))
	for _, m := range r.Members {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.AddLinks)))
	for _, l := range r.AddLinks {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(l.A))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(l.B))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(l.Bandwidth))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(l.Prop))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.DropLinks)))
	for _, d := range r.DropLinks {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d[0]))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d[1]))
	}
	return dst
}

// Encode serializes the record canonically.
func (r Record) Encode() []byte { return r.AppendTo(make([]byte, 0, r.EncodedSize())) }

// ID returns the record's content hash (first 16 bytes of SHA-256 over
// the canonical encoding). Prepare and commit forms of the same epoch
// have different IDs (ActivateAt differs); chaining uses the committed
// form's ID.
func (r Record) ID() [16]byte {
	sum := sha256.Sum256(r.Encode())
	var id [16]byte
	copy(id[:], sum[:16])
	return id
}

// DecodeRecord parses a canonical record encoding. It is strict: length
// must match exactly, members must be sorted and unique, link counts
// must be internally consistent — malformed (possibly adversarial)
// input is rejected before any signature check consumes CPU.
func DecodeRecord(b []byte) (Record, error) {
	var r Record
	if len(b) < len(recordMagic)+8+16+8+2 {
		return r, errTruncated
	}
	if string(b[:len(recordMagic)]) != recordMagic {
		return r, fmt.Errorf("member: bad record magic")
	}
	off := len(recordMagic)
	r.Num = binary.LittleEndian.Uint64(b[off:])
	off += 8
	copy(r.Prev[:], b[off:off+16])
	off += 16
	r.ActivateAt = sim.Time(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	nm := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+4*nm+2 {
		return r, errTruncated
	}
	if nm == 0 {
		return r, fmt.Errorf("member: empty membership")
	}
	r.Members = make([]network.NodeID, nm)
	for i := 0; i < nm; i++ {
		r.Members[i] = network.NodeID(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if r.Members[i] < 0 {
			return r, fmt.Errorf("member: member id overflow")
		}
		if i > 0 && r.Members[i] <= r.Members[i-1] {
			return r, fmt.Errorf("member: members not sorted-unique")
		}
	}
	na := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+24*na+2 {
		return r, errTruncated
	}
	if na > 0 {
		r.AddLinks = make([]network.Link, na)
	}
	for i := 0; i < na; i++ {
		l := network.Link{
			A:         network.NodeID(binary.LittleEndian.Uint32(b[off:])),
			B:         network.NodeID(binary.LittleEndian.Uint32(b[off+4:])),
			Bandwidth: int64(binary.LittleEndian.Uint64(b[off+8:])),
			Prop:      sim.Time(binary.LittleEndian.Uint64(b[off+16:])),
		}
		off += 24
		if l.A == l.B || l.A < 0 || l.B < 0 || l.Bandwidth <= 0 || l.Prop < 0 {
			return r, fmt.Errorf("member: malformed added link %d-%d", l.A, l.B)
		}
		r.AddLinks[i] = l
	}
	nd := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) != off+8*nd {
		return r, fmt.Errorf("member: bad record framing (%d trailing)", len(b)-off-8*nd)
	}
	if nd > 0 {
		r.DropLinks = make([][2]network.NodeID, nd)
	}
	for i := 0; i < nd; i++ {
		d := [2]network.NodeID{
			network.NodeID(binary.LittleEndian.Uint32(b[off:])),
			network.NodeID(binary.LittleEndian.Uint32(b[off+4:])),
		}
		off += 8
		if d[0] == d[1] || d[0] < 0 || d[1] < 0 {
			return r, fmt.Errorf("member: malformed dropped link %d-%d", d[0], d[1])
		}
		r.DropLinks[i] = d
	}
	return r, nil
}

// Seal returns the operator-signed wire form of the record: the
// canonical encoding followed by the operator's ed25519 signature over
// it. Only the configuration authority can produce it; every node can
// check it.
func Seal(reg *sig.Registry, r Record) []byte {
	body := r.Encode()
	return append(body, reg.OperatorSign(body)...)
}

// Open verifies an operator-sealed record and decodes it. Bit-flipped
// payloads fail the signature, truncated ones fail framing — both
// before any state is touched.
func Open(reg *sig.Registry, b []byte) (Record, error) {
	if len(b) < sig.SignatureSize {
		return Record{}, errTruncated
	}
	body, s := b[:len(b)-sig.SignatureSize], b[len(b)-sig.SignatureSize:]
	if !reg.OperatorVerify(body, s) {
		return Record{}, fmt.Errorf("member: bad operator signature")
	}
	return DecodeRecord(body)
}

// WithActivation returns a copy of the record carrying the commit-phase
// activation instant.
func (r Record) WithActivation(at sim.Time) Record {
	c := r
	c.ActivateAt = at
	// Deep-copy the slices so prepare and commit forms never alias.
	c.Members = append([]network.NodeID(nil), r.Members...)
	c.AddLinks = append([]network.Link(nil), r.AddLinks...)
	c.DropLinks = append([][2]network.NodeID(nil), r.DropLinks...)
	return c
}
