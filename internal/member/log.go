package member

import (
	"fmt"

	"btr/internal/network"
)

// Delta is the operator's intent for one reconfiguration: slots to
// activate, slots to retire, and administrative link changes. A replace
// is a join and a retire in the same record.
type Delta struct {
	Join      []network.NodeID
	Retire    []network.NodeID
	AddLinks  []network.Link
	DropLinks [][2]network.NodeID
}

// Log is a validated, hash-chained sequence of epoch records over a
// fixed slot universe, plus the derived state (current membership and
// wiring). Every node keeps one; the operator keeps the authoritative
// one it proposes from. Logs reject anything but the exact next record
// of the chain — a replayed, stale, reordered, or forked record never
// mutates state.
type Log struct {
	universe *network.Topology
	records  []Record
	wiring   []*network.Topology // wiring after records[i] activates
}

// Genesis builds the epoch-0 record for an initial membership. The
// universe's wiring is the starting point; genesis carries no link
// delta.
func Genesis(members []network.NodeID) Record {
	return Record{Num: 0, Members: canonMembers(members)}
}

func canonMembers(members []network.NodeID) []network.NodeID {
	out := append([]network.NodeID(nil), members...)
	for i := 1; i < len(out); i++ { // insertion sort; lists are short
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	dedup := out[:0]
	for i, m := range out {
		if i == 0 || m != out[i-1] {
			dedup = append(dedup, m)
		}
	}
	return dedup
}

// NewLog validates the genesis record against the slot universe and
// returns the chain rooted at it.
func NewLog(universe *network.Topology, genesis Record) (*Log, error) {
	l := &Log{universe: universe}
	if genesis.Num != 0 || genesis.Prev != ([16]byte{}) || genesis.ActivateAt != 0 {
		return nil, fmt.Errorf("member: malformed genesis record")
	}
	if len(genesis.AddLinks) != 0 || len(genesis.DropLinks) != 0 {
		return nil, fmt.Errorf("member: genesis must not carry a link delta")
	}
	if err := l.checkMembers(genesis.Members, universe); err != nil {
		return nil, err
	}
	l.records = []Record{genesis}
	l.wiring = []*network.Topology{universe}
	return l, nil
}

// checkMembers validates a membership set against a wiring: in-range,
// sorted-unique (the codec enforces this for decoded records; Propose
// enforces it for constructed ones), and mutually connected.
func (l *Log) checkMembers(members []network.NodeID, wiring *network.Topology) error {
	if len(members) == 0 {
		return fmt.Errorf("member: empty membership")
	}
	in := make(map[network.NodeID]bool, len(members))
	for i, m := range members {
		if int(m) < 0 || int(m) >= l.universe.N {
			return fmt.Errorf("member: member %d outside slot range [0,%d)", m, l.universe.N)
		}
		if i > 0 && m <= members[i-1] {
			return fmt.Errorf("member: members not sorted-unique")
		}
		in[m] = true
	}
	if d := wiring.DiameterWithin(func(n network.NodeID) bool { return in[n] }); d < 0 {
		return fmt.Errorf("member: membership %v not connected under the epoch wiring", members)
	}
	return nil
}

// Current returns the newest record of the chain.
func (l *Log) Current() Record { return l.records[len(l.records)-1] }

// Epoch returns the current epoch number.
func (l *Log) Epoch() uint64 { return l.Current().Num }

// NextNum returns the only record number the log will accept next.
func (l *Log) NextNum() uint64 { return l.Current().Num + 1 }

// Members returns the current epoch's active slots (shared; do not
// mutate).
func (l *Log) Members() []network.NodeID { return l.Current().Members }

// Wiring returns the current epoch's active wiring.
func (l *Log) Wiring() *network.Topology { return l.wiring[len(l.wiring)-1] }

// Len returns the number of records in the chain (genesis included).
func (l *Log) Len() int { return len(l.records) }

// At returns the i-th record of the chain.
func (l *Log) At(i int) Record { return l.records[i] }

// Validate checks whether r is the legal next record of this chain
// without applying it: exact next number (a replayed or future record
// fails), predecessor hash binding, members legal and connected under
// the post-delta wiring, link delta applicable to the current wiring.
func (l *Log) Validate(r Record) error {
	if r.Num != l.NextNum() {
		return fmt.Errorf("member: record num %d, chain expects %d (stale, replayed, or out of order)", r.Num, l.NextNum())
	}
	if r.Prev != l.Current().ID() {
		return fmt.Errorf("member: record %d does not chain to the current epoch", r.Num)
	}
	wiring, err := l.applyDelta(r)
	if err != nil {
		return err
	}
	return l.checkMembers(r.Members, wiring)
}

// applyDelta computes the post-record wiring, validating the delta
// against the current one.
func (l *Log) applyDelta(r Record) (*network.Topology, error) {
	cur := l.Wiring()
	if len(r.AddLinks) == 0 && len(r.DropLinks) == 0 {
		// Membership-only record: the wiring object is shared, so the
		// planner keeps one engine across the whole churn sequence.
		return cur, nil
	}
	for _, d := range r.DropLinks {
		if _, ok := cur.LinkBetween(d[0], d[1]); !ok {
			return nil, fmt.Errorf("member: record %d drops nonexistent link %d-%d", r.Num, d[0], d[1])
		}
	}
	dropped := func(a, b network.NodeID) bool {
		for _, d := range r.DropLinks {
			if (d[0] == a && d[1] == b) || (d[0] == b && d[1] == a) {
				return true
			}
		}
		return false
	}
	for i, al := range r.AddLinks {
		if int(al.A) >= l.universe.N || int(al.B) >= l.universe.N {
			return nil, fmt.Errorf("member: record %d adds link outside the slot universe", r.Num)
		}
		if _, ok := cur.LinkBetween(al.A, al.B); ok && !dropped(al.A, al.B) {
			return nil, fmt.Errorf("member: record %d adds duplicate link %d-%d", r.Num, al.A, al.B)
		}
		for _, prev := range r.AddLinks[:i] {
			if (prev.A == al.A && prev.B == al.B) || (prev.A == al.B && prev.B == al.A) {
				return nil, fmt.Errorf("member: record %d adds link %d-%d twice", r.Num, al.A, al.B)
			}
		}
	}
	return cur.WithDelta(r.AddLinks, r.DropLinks), nil
}

// PreviewWiring validates r as the next record and returns the wiring
// it would activate, without advancing the chain. Epoch planners use it
// to plan a record before committing to it.
func (l *Log) PreviewWiring(r Record) (*network.Topology, error) {
	if err := l.Validate(r); err != nil {
		return nil, err
	}
	return l.applyDelta(r)
}

// Append validates r and advances the chain.
func (l *Log) Append(r Record) error {
	if err := l.Validate(r); err != nil {
		return err
	}
	wiring, err := l.applyDelta(r)
	if err != nil {
		return err
	}
	l.records = append(l.records, r)
	l.wiring = append(l.wiring, wiring)
	return nil
}

// Propose builds the next record of the chain from an operator delta
// (ActivateAt zero: the prepare form). It validates the result so an
// impossible intent (retiring to a disconnected or empty membership,
// dropping a missing link) fails here, before anything is signed or
// sent.
func (l *Log) Propose(d Delta) (Record, error) {
	cur := map[network.NodeID]bool{}
	for _, m := range l.Members() {
		cur[m] = true
	}
	for _, j := range d.Join {
		if cur[j] {
			return Record{}, fmt.Errorf("member: join of %d: already a member", j)
		}
		cur[j] = true
	}
	for _, x := range d.Retire {
		if !cur[x] {
			return Record{}, fmt.Errorf("member: retire of %d: not a member", x)
		}
		delete(cur, x)
	}
	var members []network.NodeID
	for m := range cur {
		members = append(members, m)
	}
	r := Record{
		Num:       l.NextNum(),
		Prev:      l.Current().ID(),
		Members:   canonMembers(members),
		AddLinks:  append([]network.Link(nil), d.AddLinks...),
		DropLinks: append([][2]network.NodeID(nil), d.DropLinks...),
	}
	if err := l.Validate(r); err != nil {
		return Record{}, err
	}
	return r, nil
}

// Quorum returns the prepare-phase acknowledgment threshold for a
// membership of size n under fault bound f: every member that is not
// one of the up-to-f faulty nodes must hold the record before the
// operator schedules activation, so n-f acks (floor 1) are required.
func Quorum(n, f int) int {
	q := n - f
	if q < 1 {
		q = 1
	}
	return q
}
