package clock

import (
	"testing"
	"testing/quick"

	"btr/internal/sim"
)

func TestDriftClockAdvances(t *testing.T) {
	c := NewDriftClock(100e-6, 0) // +100 ppm
	if got := c.Read(0); got != 0 {
		t.Errorf("Read(0) = %v", got)
	}
	// After 1 true second, local time is 1s + 100us.
	if got := c.Read(sim.Second); got != sim.Second+100*sim.Microsecond {
		t.Errorf("Read(1s) = %v", got)
	}
}

func TestDriftClockNegativeDrift(t *testing.T) {
	c := NewDriftClock(-50e-6, 10*sim.Millisecond)
	got := c.Read(sim.Second)
	want := sim.Second + 10*sim.Millisecond - 50*sim.Microsecond
	if got != want {
		t.Errorf("Read = %v, want %v", got, want)
	}
}

func TestAdjustTo(t *testing.T) {
	c := NewDriftClock(100e-6, 5*sim.Millisecond)
	c.AdjustTo(sim.Second, sim.Second) // snap to true time
	if got := c.Read(sim.Second); got != sim.Second {
		t.Errorf("after adjust, Read = %v", got)
	}
	// Drift resumes from the new anchor.
	if got := c.Read(2 * sim.Second); got != 2*sim.Second+100*sim.Microsecond {
		t.Errorf("post-adjust drift wrong: %v", got)
	}
}

func TestEnsembleConvergesWithoutFaults(t *testing.T) {
	rng := sim.NewRNG(1)
	e := NewEnsemble(rng, 4, 1, 50e-6, 5*sim.Millisecond)
	interval := 100 * sim.Millisecond
	// Initial skew can be up to 10ms; after a few rounds it must sit
	// within the steady-state bound.
	e.Run(0, interval, 5)
	now := 5 * interval
	bound := SkewBound(50e-6, interval)
	// Run further rounds and check skew before each.
	for r := 0; r < 20; r++ {
		now += interval
		if s := e.Skew(now); s > bound {
			t.Fatalf("round %d: skew %v exceeds bound %v", r, s, bound)
		}
		e.SyncRound(now)
	}
}

func TestEnsembleToleratesByzantineClock(t *testing.T) {
	rng := sim.NewRNG(2)
	e := NewEnsemble(rng, 4, 1, 50e-6, 2*sim.Millisecond)
	// Node 0 reports a wildly wrong clock, alternating extremes.
	flip := false
	e.Byzantine[0] = func(now sim.Time) sim.Time {
		flip = !flip
		if flip {
			return now + sim.Minute
		}
		return now - sim.Minute
	}
	interval := 100 * sim.Millisecond
	e.Run(0, interval, 5) // settle
	now := 5 * interval
	bound := SkewBound(50e-6, interval)
	for r := 0; r < 30; r++ {
		now += interval
		if s := e.Skew(now); s > bound {
			t.Fatalf("round %d: Byzantine clock pushed skew to %v (bound %v)", r, s, bound)
		}
		e.SyncRound(now)
	}
}

func TestEnsembleRequiresQuorum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=3, f=1 should panic (needs 3f+1)")
		}
	}()
	NewEnsemble(sim.NewRNG(1), 3, 1, 50e-6, 0)
}

func TestEnsemblePropertyBoundedSkew(t *testing.T) {
	// For random ensembles with one Byzantine clock, steady-state skew
	// stays within the analytic bound.
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 4 + int(seed%5) // 4..8 nodes, f=1
		e := NewEnsemble(rng, n, 1, 100e-6, 3*sim.Millisecond)
		e.Byzantine[int(seed%uint64(n))] = func(now sim.Time) sim.Time {
			return now + sim.Time(rng.Int63n(int64(sim.Minute))) - 30*sim.Second
		}
		interval := 50 * sim.Millisecond
		e.Run(0, interval, 5) // settle
		now := 5 * interval
		bound := SkewBound(100e-6, interval)
		for r := 0; r < 10; r++ {
			now += interval
			if e.Skew(now) > bound {
				return false
			}
			e.SyncRound(now)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSkewBoundAndMargin(t *testing.T) {
	b := SkewBound(50e-6, 100*sim.Millisecond)
	if b <= 0 || b > sim.Millisecond {
		t.Errorf("SkewBound = %v, expected small positive", b)
	}
	m := WatchdogMarginFor(50e-6, 100*sim.Millisecond, sim.Millisecond)
	if m <= sim.Millisecond {
		t.Errorf("margin %v should exceed the jitter alone", m)
	}
	// The default planner margin (2ms) dominates typical crystal drift
	// synced every 100ms with 1ms network jitter — document the check
	// that makes the runtime's perfect-clock assumption safe.
	if m > 2*sim.Millisecond {
		t.Errorf("margin %v exceeds the planner default of 2ms", m)
	}
}

func TestWithoutSyncSkewGrows(t *testing.T) {
	rng := sim.NewRNG(3)
	e := NewEnsemble(rng, 4, 1, 100e-6, 0)
	small := e.Skew(sim.Second)
	big := e.Skew(10 * sim.Minute)
	if big <= small {
		t.Errorf("skew did not grow without sync: %v then %v", small, big)
	}
	if big <= 10*sim.Millisecond {
		t.Errorf("after 10min at 100ppm, skew %v implausibly small", big)
	}
}
