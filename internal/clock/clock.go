// Package clock provides the clock-synchronization substrate the paper's
// system model assumes (§2.1: "nodes have … access to a local clock"; the
// authors note that "there is a rich literature on clock synchronization
// alone" and that the assumption is reasonable for CPS hardware).
//
// Two pieces:
//
//   - DriftClock: a local oscillator with a bounded drift rate, mapping
//     true (simulation) time to local time.
//
//   - Ensemble: the Welch–Lynch fault-tolerant averaging algorithm. Every
//     sync round, each node reads every other node's clock, sorts the
//     readings, discards the f lowest and f highest (a Byzantine clock can
//     lie arbitrarily, but after discarding, the remaining extremes are
//     bracketed by correct readings), and jumps to the midpoint of the
//     remaining extremes. With n ≥ 3f+1 this keeps correct clocks within
//     a bounded skew of each other forever.
//
// The BTR runtime's static tables assume synchronized clocks; the
// watchdog margin (plan.Options.WatchdogMargin) must dominate the
// ensemble's guaranteed skew bound, which SkewBound computes.
package clock

import (
	"fmt"
	"sort"

	"btr/internal/network"
	"btr/internal/sim"
)

// DriftClock models a local oscillator: local time advances at rate
// (1 + Drift) relative to true time, from a per-clock initial offset.
// Drift is expressed as a fraction (e.g., 50e-6 = 50 ppm, a typical cheap
// crystal).
type DriftClock struct {
	Drift  float64
	offset sim.Time // local - true at lastTrue
	// lastTrue anchors the linear segment (adjustments re-anchor).
	lastTrue sim.Time
}

// NewDriftClock returns a clock with the given drift and initial offset.
func NewDriftClock(drift float64, initialOffset sim.Time) *DriftClock {
	return &DriftClock{Drift: drift, offset: initialOffset}
}

// Read returns the local time at true time now.
func (c *DriftClock) Read(now sim.Time) sim.Time {
	elapsed := now - c.lastTrue
	return now + c.offset + sim.Time(float64(elapsed)*c.Drift)
}

// AdjustTo slews the clock so that Read(now) == target, re-anchoring the
// drift segment at now.
func (c *DriftClock) AdjustTo(now, target sim.Time) {
	c.offset = target - now
	c.lastTrue = now
}

// Ensemble synchronizes n clocks, up to f of which may be Byzantine.
type Ensemble struct {
	F      int
	Clocks []*DriftClock
	// Byzantine, if non-nil for node i, replaces i's reported reading
	// (the adversary lies about its clock, it cannot corrupt others').
	Byzantine []func(trueNow sim.Time) sim.Time
}

// NewEnsemble builds an ensemble of n clocks with drifts and offsets drawn
// deterministically from rng within ±maxDrift and ±maxOffset.
func NewEnsemble(rng *sim.RNG, n, f int, maxDrift float64, maxOffset sim.Time) *Ensemble {
	if n < 3*f+1 {
		panic(fmt.Sprintf("clock: Welch-Lynch needs n >= 3f+1 (n=%d, f=%d)", n, f))
	}
	e := &Ensemble{F: f, Byzantine: make([]func(sim.Time) sim.Time, n)}
	for i := 0; i < n; i++ {
		drift := (rng.Float64()*2 - 1) * maxDrift
		var off sim.Time
		if maxOffset > 0 {
			off = rng.Duration(2*maxOffset) - maxOffset
		}
		e.Clocks = append(e.Clocks, NewDriftClock(drift, off))
	}
	return e
}

// reading returns node i's reported clock value at true time now.
func (e *Ensemble) reading(i int, now sim.Time) sim.Time {
	if b := e.Byzantine[i]; b != nil {
		return b(now)
	}
	return e.Clocks[i].Read(now)
}

// SyncRound runs one Welch–Lynch round at true time now: every correct
// node gathers all readings (message delays bounded by propBound are
// modeled as a symmetric read error the algorithm tolerates), discards the
// F lowest and F highest, and adjusts to the midpoint of the remaining
// extremes.
func (e *Ensemble) SyncRound(now sim.Time) {
	n := len(e.Clocks)
	readings := make([]sim.Time, n)
	for i := range readings {
		readings[i] = e.reading(i, now)
	}
	for i := range e.Clocks {
		if e.Byzantine[i] != nil {
			continue // Byzantine nodes do whatever they want
		}
		sorted := append([]sim.Time(nil), readings...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		trimmed := sorted[e.F : n-e.F]
		mid := trimmed[0] + (trimmed[len(trimmed)-1]-trimmed[0])/2
		e.Clocks[i].AdjustTo(now, mid)
	}
}

// Skew returns the maximum difference between any two *correct* clocks at
// true time now.
func (e *Ensemble) Skew(now sim.Time) sim.Time {
	var lo, hi sim.Time
	first := true
	for i, c := range e.Clocks {
		if e.Byzantine[i] != nil {
			continue
		}
		r := c.Read(now)
		if first {
			lo, hi, first = r, r, false
			continue
		}
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return hi - lo
}

// SkewBound returns the worst-case steady-state skew of a correct
// ensemble syncing every interval with per-clock drift at most maxDrift:
// after a round, correct clocks agree to within the round's read error;
// between rounds they diverge at most 2·maxDrift·interval.
func SkewBound(maxDrift float64, interval sim.Time) sim.Time {
	return sim.Time(2*maxDrift*float64(interval)) + 1
}

// Run simulates periodic synchronization from trueStart for rounds rounds
// at the given interval, returning the maximum observed correct-clock skew
// measured just *before* each round (the worst instant).
func (e *Ensemble) Run(trueStart, interval sim.Time, rounds int) sim.Time {
	var worst sim.Time
	now := trueStart
	for r := 0; r < rounds; r++ {
		now += interval
		if s := e.Skew(now); s > worst {
			worst = s
		}
		e.SyncRound(now)
	}
	return worst
}

// WatchdogMarginFor returns a watchdog margin that dominates clock skew
// for the given sync parameters plus a network jitter allowance — what
// plan.Options.WatchdogMargin should be set to when running on drifting
// clocks.
func WatchdogMarginFor(maxDrift float64, syncInterval, netJitter sim.Time) sim.Time {
	return 2*SkewBound(maxDrift, syncInterval) + netJitter
}

// NodeClock adapts a DriftClock to a node-local view (convenience for
// runtime integration and tests).
type NodeClock struct {
	ID    network.NodeID
	Clock *DriftClock
}
