package baseline

import (
	"btr/internal/sim"
)

// RecoveryModel samples the time from fault manifestation to correct
// output for one protocol. BTR's distribution comes from running the real
// system (internal/core); the alternatives are modeled with explicit,
// documented parameters so E10 compares distribution *shapes* — masked
// (zero), bounded (BTR), heavy-tailed (self-stabilization), and never
// (unreplicated) — which is the paper's argument, not absolute values.
type RecoveryModel struct {
	Protocol Protocol

	// Period is the workload period (detection granularity).
	Period sim.Time

	// ZZ parameters: disagreement is detected within one period; a
	// standby then boots, fetches state, and re-executes. Wood et al.
	// report recovery dominated by VM wake-up; we default to 40 periods.
	ZZStandbyActivation sim.Time

	// Self-stabilization parameters: an audit sweeps every AuditInterval
	// and notices the corruption with probability AuditDetectProb
	// (corruption may hide in state the audit doesn't touch that round).
	AuditInterval   sim.Time
	AuditDetectProb float64
	RepairTime      sim.Time
}

// DefaultRecoveryModel returns the documented defaults for protocol p at
// the given period.
func DefaultRecoveryModel(p Protocol, period sim.Time) RecoveryModel {
	return RecoveryModel{
		Protocol:            p,
		Period:              period,
		ZZStandbyActivation: 40 * period,
		AuditInterval:       10 * period,
		AuditDetectProb:     0.3,
		RepairTime:          2 * period,
	}
}

// Sample draws one recovery duration. sim.Never means the protocol never
// recovers the lost outputs.
func (m RecoveryModel) Sample(rng *sim.RNG) sim.Time {
	switch m.Protocol {
	case BFTMask:
		// 2f+1 matching replies mask the fault: outputs never wrong.
		return 0
	case ZZReactive:
		// Detect at the next comparison (uniform within a period), then
		// activate a standby and catch up.
		detect := rng.Duration(m.Period) + m.Period
		return detect + m.ZZStandbyActivation
	case SelfStab:
		// Geometric number of audit rounds until detection.
		rounds := 1
		for !rng.Bool(m.AuditDetectProb) {
			rounds++
			if rounds > 1<<16 {
				break // pathological seed guard; tail is the point
			}
		}
		return sim.Time(rounds)*m.AuditInterval + m.RepairTime
	case Unreplicated:
		return sim.Never
	default:
		panic("baseline: Sample is for modeled protocols; run BTR for real")
	}
}
