// Package baseline implements the fault-tolerance alternatives the paper
// positions BTR against (§3.1, §5), on the same simulated substrate and
// workloads, so that cost and recovery comparisons are apples-to-apples:
//
//   - BFTMask — classical Byzantine fault tolerance in the style of
//     PBFT/SMR: 3f+1 replicas of every task, consumers vote on 2f+1
//     matching values. Masks all faults (R = 0) but triples the resource
//     bill; on weak CPS processors this is exactly the cost the paper
//     argues developers are "reluctant to accept" (§2).
//
//   - ZZReactive — ZZ-style reactive execution [71]: f+1 active replicas
//     with comparison-based detection, plus f cold standbys activated on
//     disagreement. Cheap in the normal case; recovery pays the standby
//     activation latency and, unlike BTR, there is no precomputed
//     distributed schedule guaranteeing the post-fault timing.
//
//   - SelfStab — self-stabilization in the style of Dijkstra [28]: no
//     replication; a periodic audit eventually detects and corrects a
//     corrupted component. Convergence is only eventual — the recovery
//     distribution has an unbounded geometric tail, the antithesis of a
//     hard R.
//
//   - Unreplicated — the do-nothing baseline: a fault permanently loses
//     the outputs of everything on the faulty node.
//
// Structural costs (replica counts, schedulability, minimum CPU speed)
// are computed exactly via the shared scheduler; recovery behavior of the
// non-BTR protocols is modeled analytically with explicit parameters
// (documented per model), because the paper's comparison is about the
// shape of these distributions, not protocol micro-detail.
package baseline

import (
	"fmt"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sched"
	"btr/internal/sim"
)

// Protocol enumerates the compared designs.
type Protocol int

const (
	// BTR is bounded-time recovery (this repository's core system).
	BTR Protocol = iota
	// BFTMask is 3f+1 masking replication.
	BFTMask
	// ZZReactive is f+1 active replicas plus reactive standbys.
	ZZReactive
	// SelfStab is unreplicated with periodic audit and eventual repair.
	SelfStab
	// Unreplicated runs the workload bare.
	Unreplicated
)

// Protocols lists all protocols in presentation order.
var Protocols = []Protocol{BTR, BFTMask, ZZReactive, SelfStab, Unreplicated}

func (p Protocol) String() string {
	switch p {
	case BTR:
		return "BTR"
	case BFTMask:
		return "BFT(3f+1)"
	case ZZReactive:
		return "ZZ(f+1)"
	case SelfStab:
		return "SelfStab"
	case Unreplicated:
		return "Unreplicated"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// ReplicaFactor returns the replica counts (non-source, source) protocol p
// uses at fault bound f.
func ReplicaFactor(p Protocol, f int) (nonSource, source int) {
	switch p {
	case BTR:
		return f + 1, 2*f + 1
	case BFTMask:
		return 3*f + 1, 3*f + 1
	case ZZReactive:
		return f + 1, 2*f + 1 // active replicas; standbys consume no CPU
	default:
		return 1, 1
	}
}

// Augment builds protocol p's runtime graph for the workload.
func Augment(p Protocol, g *flow.Graph, f int) *flow.Graph {
	switch p {
	case BTR:
		return plan.Augment(g, plan.DefaultAugment(f))
	case BFTMask:
		return replicate(g, 3*f+1, 3*f+1, false)
	case ZZReactive:
		// Active replicas only; standby activation is modeled in the
		// recovery distribution, not the schedule.
		return replicate(g, f+1, 2*f+1, false)
	case SelfStab:
		return replicate(g, 1, 1, true)
	case Unreplicated:
		return replicate(g, 1, 1, false)
	default:
		panic("baseline: unknown protocol")
	}
}

// replicate builds a plain replica-bundle graph (no checkers, no
// accountability attachments — baselines ship raw values plus a
// signature).
func replicate(g *flow.Graph, nonSrc, src int, withAudit bool) *flow.Graph {
	a := flow.NewGraph(g.Name+"+base", g.Period)
	reps := func(t *flow.Task) int {
		if t.Source {
			return src
		}
		return nonSrc
	}
	for _, id := range g.TaskIDs() {
		t := g.Tasks[id]
		for i := 0; i < reps(t); i++ {
			rt := *t
			rt.ID = plan.ReplicaID(id, i)
			a.AddTask(rt)
		}
	}
	for _, e := range g.Edges {
		prod, cons := g.Tasks[e.From], g.Tasks[e.To]
		bytes := e.Bytes + 128 // record framing + signature, no attachments
		for i := 0; i < reps(prod); i++ {
			for j := 0; j < reps(cons); j++ {
				a.Connect(plan.ReplicaID(e.From, i), plan.ReplicaID(e.To, j), bytes)
			}
		}
	}
	if withAudit {
		// Self-stabilization: a small periodic audit task per sink chain
		// that scans state for corruption.
		for _, s := range g.Sinks() {
			id := flow.TaskID("audit:" + string(s))
			a.AddTask(flow.Task{
				ID: plan.ReplicaID(id, 0), WCET: 300 * sim.Microsecond,
				Crit: g.Tasks[s].Crit, Sink: true, Deadline: g.Period, StateBytes: 64,
			})
			a.Connect(plan.ReplicaID(s, 0), plan.ReplicaID(id, 0), 64)
		}
		// The audited sinks now have outputs; clear their sink flag like
		// plan.Augment does.
		for _, s := range g.Sinks() {
			rt := a.Tasks[plan.ReplicaID(s, 0)]
			rt.Sink = false
			rt.Deadline = 0
		}
	}
	return a
}

// Schedulable reports whether protocol p's augmented workload fits the
// topology at the given CPU speed, meeting all actuation deadlines.
func Schedulable(p Protocol, g *flow.Graph, topo *network.Topology, f int, speed float64) bool {
	params := sched.DefaultParams()
	params.Speed = speed
	if p == BTR {
		opts := plan.DefaultOptions(f, sim.Never)
		opts.Sched = params
		s, err := plan.Build(g, topo, opts)
		if err != nil {
			return false
		}
		// No shedding allowed in this comparison: full workload or bust.
		return len(s.Plans[""].ShedSinks) == 0
	}
	aug := Augment(p, g, f)
	asn, err := plan.AssignGreedy(aug, topo, plan.NewFaultSet())
	if err != nil {
		return false
	}
	table, err := sched.Build(aug, asn, topo, params)
	if err != nil {
		return false
	}
	if len(table.CheckDeadlines(aug)) != 0 {
		return false
	}
	// Actuation deadlines of the base sinks' replicas.
	for _, s := range g.Sinks() {
		dl := g.Tasks[s].Deadline
		for _, id := range aug.TaskIDs() {
			logical, _ := plan.SplitReplica(id)
			if logical == s && table.Finish[id] > dl {
				return false
			}
		}
	}
	return true
}

// MinSpeed binary-searches the minimum CPU speed factor at which the
// protocol schedules the workload (the paper's "impact on clock
// frequency" metric, §2). Returns +Inf-like sentinel 0 if even the max
// speed fails.
func MinSpeed(p Protocol, g *flow.Graph, topo *network.Topology, f int) float64 {
	const lo0, hi0 = 0.01, 16.0
	if !Schedulable(p, g, topo, f, hi0) {
		return 0 // unschedulable at any reasonable speed
	}
	lo, hi := lo0, hi0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if Schedulable(p, g, topo, f, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Utilization returns the peak per-node CPU utilization of protocol p's
// schedule at nominal speed, plus the per-period foreground bytes it puts
// on the network. Zeroes if unschedulable.
func Utilization(p Protocol, g *flow.Graph, topo *network.Topology, f int) (maxUtil float64, netBytes int64) {
	aug := Augment(p, g, f)
	if p == BTR {
		opts := plan.DefaultOptions(f, sim.Never)
		s, err := plan.Build(g, topo, opts)
		if err != nil {
			return 0, 0
		}
		aug = s.Plans[""].Aug
		_, maxUtil = s.Plans[""].Table.MaxUtilization()
	} else {
		asn, err := plan.AssignGreedy(aug, topo, plan.NewFaultSet())
		if err != nil {
			return 0, 0
		}
		table, err := sched.Build(aug, asn, topo, sched.DefaultParams())
		if err != nil {
			return 0, 0
		}
		_, maxUtil = table.MaxUtilization()
	}
	for _, e := range aug.Edges {
		netBytes += e.Bytes
	}
	return maxUtil, netBytes
}
