package baseline

import (
	"testing"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/sim"
)

func testWorkload() *flow.Graph {
	return flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
}

func testTopo(n int) *network.Topology {
	return network.FullMesh(n, 20_000_000, 50*sim.Microsecond)
}

func TestReplicaFactors(t *testing.T) {
	cases := []struct {
		p       Protocol
		f       int
		ns, src int
	}{
		{BTR, 1, 2, 3},
		{BTR, 2, 3, 5},
		{BFTMask, 1, 4, 4},
		{BFTMask, 2, 7, 7},
		{ZZReactive, 1, 2, 3},
		{SelfStab, 1, 1, 1},
		{Unreplicated, 2, 1, 1},
	}
	for _, c := range cases {
		ns, src := ReplicaFactor(c.p, c.f)
		if ns != c.ns || src != c.src {
			t.Errorf("%v f=%d: got (%d,%d), want (%d,%d)", c.p, c.f, ns, src, c.ns, c.src)
		}
	}
}

func TestAugmentValidates(t *testing.T) {
	g := testWorkload()
	for _, p := range Protocols {
		aug := Augment(p, g, 1)
		if err := aug.Validate(); err != nil {
			t.Errorf("%v: augmented graph invalid: %v", p, err)
		}
	}
}

func TestAugmentSizesOrdered(t *testing.T) {
	g := testWorkload()
	sizes := map[Protocol]int{}
	for _, p := range Protocols {
		sizes[p] = len(Augment(p, g, 1).Tasks)
	}
	if !(sizes[BFTMask] > sizes[BTR]) {
		t.Errorf("BFT (%d tasks) should exceed BTR (%d)", sizes[BFTMask], sizes[BTR])
	}
	if !(sizes[BTR] > sizes[Unreplicated]) {
		t.Errorf("BTR (%d) should exceed unreplicated (%d)", sizes[BTR], sizes[Unreplicated])
	}
}

func TestSchedulableMonotoneInSpeed(t *testing.T) {
	g := testWorkload()
	topo := testTopo(8)
	for _, p := range []Protocol{BTR, BFTMask, Unreplicated} {
		if Schedulable(p, g, topo, 1, 0.02) && !Schedulable(p, g, topo, 1, 8.0) {
			t.Errorf("%v: schedulable slow but not fast — monotonicity broken", p)
		}
		if !Schedulable(p, g, topo, 1, 8.0) {
			t.Errorf("%v: not schedulable even at 8x", p)
		}
	}
}

func TestMinSpeedOrdering(t *testing.T) {
	// The paper's cost claim: masking needs a faster CPU than detection,
	// which needs a faster CPU than nothing.
	g := testWorkload()
	topo := testTopo(8)
	unrep := MinSpeed(Unreplicated, g, topo, 1)
	btr := MinSpeed(BTR, g, topo, 1)
	bft := MinSpeed(BFTMask, g, topo, 1)
	if unrep == 0 || btr == 0 || bft == 0 {
		t.Fatalf("unschedulable: unrep=%v btr=%v bft=%v", unrep, btr, bft)
	}
	if !(unrep < btr && btr < bft) {
		t.Errorf("min speeds not ordered: unrep=%.3f btr=%.3f bft=%.3f", unrep, btr, bft)
	}
}

func TestUtilizationOrdering(t *testing.T) {
	g := testWorkload()
	topo := testTopo(8)
	uBTR, bBTR := Utilization(BTR, g, topo, 1)
	uBFT, _ := Utilization(BFTMask, g, topo, 1)
	uUn, bUn := Utilization(Unreplicated, g, topo, 1)
	if uBTR == 0 || uBFT == 0 || uUn == 0 {
		t.Fatalf("some protocol unschedulable: %v %v %v", uBTR, uBFT, uUn)
	}
	if bUn >= bBTR {
		t.Errorf("unreplicated bytes %d should be below BTR %d", bUn, bBTR)
	}
	// At f=1 on a tiny chain BTR's accountability attachments roughly
	// offset BFT's extra edges; the separation the paper argues shows up
	// as f grows (BFT bundles scale with (3f+1)^2 vs BTR's (f+1)^2).
	topo2 := testTopo(12)
	_, bBTR2 := Utilization(BTR, g, topo2, 2)
	_, bBFT2 := Utilization(BFTMask, g, topo2, 2)
	if bBTR2 == 0 || bBFT2 == 0 {
		t.Fatalf("f=2 unschedulable: btr=%d bft=%d", bBTR2, bBFT2)
	}
	if bBTR2 >= bBFT2 {
		t.Errorf("f=2 network bytes: btr=%d should be below bft=%d", bBTR2, bBFT2)
	}
	_ = bBTR
}

func TestRecoveryModelShapes(t *testing.T) {
	rng := sim.NewRNG(7)
	period := 25 * sim.Millisecond

	bft := DefaultRecoveryModel(BFTMask, period)
	for i := 0; i < 100; i++ {
		if bft.Sample(rng) != 0 {
			t.Fatal("BFT must mask (recovery 0)")
		}
	}

	zz := DefaultRecoveryModel(ZZReactive, period)
	for i := 0; i < 100; i++ {
		s := zz.Sample(rng)
		if s < zz.ZZStandbyActivation || s > zz.ZZStandbyActivation+2*period {
			t.Fatalf("ZZ sample %v outside activation window", s)
		}
	}

	ss := DefaultRecoveryModel(SelfStab, period)
	var max sim.Time
	for i := 0; i < 2000; i++ {
		s := ss.Sample(rng)
		if s < ss.AuditInterval {
			t.Fatalf("self-stab recovered before the first audit: %v", s)
		}
		if s > max {
			max = s
		}
	}
	// Heavy tail: max across 2000 samples should exceed 5 audit rounds.
	if max < 5*ss.AuditInterval {
		t.Errorf("self-stab tail too light: max %v", max)
	}

	un := DefaultRecoveryModel(Unreplicated, period)
	if un.Sample(rng) != sim.Never {
		t.Error("unreplicated must never recover")
	}
}

func TestProtocolStrings(t *testing.T) {
	for _, p := range Protocols {
		if p.String() == "" {
			t.Errorf("protocol %d has empty name", p)
		}
	}
}
