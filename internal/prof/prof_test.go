package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fs := flag.NewFlagSet("t", flag.PanicOnError)
	f := RegisterOn(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = filepath.Join(dir, "spin") // some work for the profiler to see
	}
	stop()
	stop() // idempotent
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestNoFlagsNoFiles(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.PanicOnError)
	f := RegisterOn(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

func TestCPUProfileBadPath(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.PanicOnError)
	f := RegisterOn(fs)
	if err := fs.Parse([]string{"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Start(); err == nil {
		t.Fatal("expected error for uncreatable profile path")
	}
}
