// Package prof wires the standard -cpuprofile/-memprofile flags into the
// BTR command-line tools (cmd/btrcampaign, cmd/btrbench), so perf work
// can profile the parallel campaign path directly:
//
//	btrcampaign -workers 4 -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the registered profiling flag values.
type Flags struct {
	cpu, mem *string
}

// Register adds -cpuprofile and -memprofile to the default flag set.
// Call before flag.Parse.
func Register() *Flags { return RegisterOn(flag.CommandLine) }

// RegisterOn adds the profiling flags to an explicit flag set.
func RegisterOn(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile of the run to `file`"),
		mem: fs.String("memprofile", "", "write a heap profile at exit to `file`"),
	}
}

// Start begins CPU profiling if -cpuprofile was given. The returned stop
// function ends the CPU profile and writes the heap profile (if
// -memprofile was given); it is idempotent, so callers can both defer it
// and invoke it explicitly before os.Exit.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *f.mem != "" {
			mf, err := os.Create(*f.mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			runtime.GC() // materialize live-set accounting before the snapshot
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintf(os.Stderr, "prof: write heap profile: %v\n", err)
			}
			mf.Close()
		}
	}, nil
}
