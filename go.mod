module btr

go 1.21
