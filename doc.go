// Package btr reproduces "Fault Tolerance and the Five-Second Rule"
// (Chen, Xiao, Haeberlen, Phan — HotOS XV, 2015): bounded-time recovery
// (BTR) for cyber-physical systems, together with every substrate the
// design depends on — a deterministic discrete-event simulator, a
// finite-bandwidth network with statically allocated link shares, an
// ed25519 signature layer, periodic mixed-criticality dataflow workloads,
// table-driven scheduling, the offline strategy planner, the online
// detector / evidence distributor / mode switcher, physical plant models,
// and the baseline protocols BTR is compared against.
//
// The runtime is transport-agnostic: every layer above the substrate is
// written against two seams — sim.Scheduler (discrete-event Kernel or
// wall-clock WallScheduler) and network.Transport (simulated Network or
// live channel-based Bus) — so the same node executive that passes the
// deterministic campaigns also runs as a live wall-clock deployment
// (internal/live, cmd/btrlive) with recovery measured in real time
// against the provable bound R.
//
// Membership is online: internal/member defines operator-signed,
// hash-chained epoch records (membership set + link delta), the runtime
// switches epochs with a two-phase prepare/commit protocol (quorum of
// n-f acks, activation at a signed instant past both epochs'
// distribution bounds), and the transport adds/removes Bus lanes as
// slots join and retire. Node identities and keys are never reassigned
// across epochs, so evidence signed in any prior epoch stays
// attributable forever and fault sets remain append-only through
// reconfiguration. Epoch re-planning rides the incremental plan engine:
// a dormant slot plans exactly like an excluded node, so warm churn
// re-plans nothing. The C6 campaign family (and btrlive's
// -join/-retire/-replace flags) exercise join/retire/replace storms
// across five topology families, holding recovery within the per-epoch
// bound R across every epoch boundary.
//
// The fault model is machine-checked: FAULT_MODEL.md states, for every
// behavior in the catalog, what happens at ≤ f active faults (tolerated
// within the provable bound R), beyond f transiently (detected — signed
// over-budget verdicts open a degraded window that a reconciled verdict
// closes when convictions expire on the parole clock,
// runtime.Config.ForgiveAfter), and under a sustained fault arrival
// rate (the C8 campaign family, internal/faultrate, locates the knee).
// Every tolerated/detected cell cites the test or bench gate proving
// it, and cmd/btrfaultmodel verifies the citations in CI.
//
// Host-side crypto cost is amortized by the internal/sig memo fast path:
// verification and sealing are deterministic, so they are memoized
// (positive entries only, full-triple keys) and evidence blobs are
// encoded once and forwarded by slice reuse — campaign wall clock drops
// >2x while every simulated-time result, including the virtual
// sig.CostModel charges, stays byte-identical.
//
// Start with README.md, the runnable examples under examples/, or the
// experiment harness:
//
//	go run ./cmd/btrbench        # regenerate every experiment table
//	go run ./examples/quickstart # smallest complete deployment
//	go run ./cmd/btrlive         # live wall-clock deployment + fault injection
//
// The library surface lives under internal/ (this is a research
// reproduction, not a stable API); cmd/ and examples/ show every intended
// usage pattern.
package btr
