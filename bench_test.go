package btr

// One benchmark per reproduced experiment (see EXPERIMENTS.md): each runs
// the full experiment pipeline — offline planning, deterministic
// simulation, fault injection, measurement — in quick mode, and reports
// the headline quantity via b.ReportMetric so `go test -bench=.` doubles
// as a results regeneration pass.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"btr/internal/campaign"
	"btr/internal/exp"
	"btr/internal/flow"
	"btr/internal/live"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plan/cache"
	"btr/internal/sig"
	"btr/internal/sim"
)

// TestMain lets this test binary double as the node-process binary: the
// C7 multi-process family re-executes os.Executable() with BTR_PROC_SPEC
// set, and MaybeRunNodeProc turns that re-execution into a deployment
// node instead of a second test run.
func TestMain(m *testing.M) {
	live.MaybeRunNodeProc()
	os.Exit(m.Run())
}

// planBenchDeployment is the largest C2 topology (full mesh, 12 nodes,
// f=2) with the standard chain workload — the configuration the
// plan-cache acceptance criterion is pinned on.
func planBenchDeployment() (*flow.Graph, *network.Topology, plan.Options) {
	return flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA),
		network.FullMesh(12, 20_000_000, 50*sim.Microsecond),
		plan.DefaultOptions(2, 500*sim.Millisecond)
}

// measurePlanCache times cold full synthesis vs. warm cache-backed
// assembly for BENCH_campaign.json (best of 3 each).
func measurePlanCache(t *testing.T) planCacheBench {
	g, topo, opts := planBenchDeployment()
	best := func(f func()) time.Duration {
		b := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}
	var sets int
	cold := best(func() {
		s, err := plan.Build(g, topo, opts)
		if err != nil {
			t.Fatalf("plan-cache bench: %v", err)
		}
		sets = len(s.Plans)
	})
	eng := cache.NewEngine(g, topo, opts, nil)
	if _, err := eng.Precompute(); err != nil {
		t.Fatalf("plan-cache bench: %v", err)
	}
	if _, err := eng.BuildStrategy(); err != nil { // populate transition memo
		t.Fatalf("plan-cache bench: %v", err)
	}
	warm := best(func() {
		if _, err := eng.BuildStrategy(); err != nil {
			t.Fatalf("plan-cache bench: %v", err)
		}
	})
	st := eng.Stats()
	return planCacheBench{
		Topology:    "full-mesh/n=12/f=2",
		FaultSets:   sets,
		Orbits:      st.DeltaBuilds + st.FullBuilds,
		ColdMS:      float64(cold.Microseconds()) / 1000,
		WarmMS:      float64(warm.Microseconds()) / 1000,
		Speedup:     float64(cold) / float64(warm),
		SymHits:     st.SymmetryHits,
		DeltaBuilds: st.DeltaBuilds,
	}
}

// BenchmarkPlanColdFullSynthesis is the baseline the plan cache is
// measured against: plan.Build on the largest C2 topology.
func BenchmarkPlanColdFullSynthesis(b *testing.B) {
	g, topo, opts := planBenchDeployment()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Build(g, topo, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanColdEngine: a cold engine still synthesizes, but only
// once per symmetry orbit (3 for a full mesh) instead of once per fault
// set (79).
func BenchmarkPlanColdEngine(b *testing.B) {
	g, topo, opts := planBenchDeployment()
	for i := 0; i < b.N; i++ {
		if _, err := cache.NewEngine(g, topo, opts, nil).BuildStrategy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanWarmEngine: warm-cache strategy assembly — the
// acceptance criterion pins this at >=5x faster than
// BenchmarkPlanColdFullSynthesis (TestWarmCacheSpeedup in
// internal/plan/cache enforces it; the real margin is ~20x+).
func BenchmarkPlanWarmEngine(b *testing.B) {
	g, topo, opts := planBenchDeployment()
	eng := cache.NewEngine(g, topo, opts, nil)
	if _, err := eng.BuildStrategy(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.BuildStrategy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanDeltaSingleFault: repairing a plan for one added fault
// vs. synthesizing it from scratch (the incremental path node failover
// relies on).
func BenchmarkPlanDeltaSingleFault(b *testing.B) {
	g, topo, opts := planBenchDeployment()
	syn := plan.NewSynth(g, topo, opts)
	base, err := syn.BuildPlan(plan.NewFaultSet(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := plan.NewFaultSet(network.NodeID(i % topo.N))
		if _, err := syn.DeltaPlan(base, fs); err != nil {
			b.Fatal(err)
		}
	}
}

// measureLiveSoak runs the C5 live wall-clock scenario and folds its
// per-run rows into per-topology bundle entries.
func measureLiveSoak(p campaign.Params) []liveBenchRow {
	res := campaign.Run([]campaign.Scenario{exp.C5Scenario()}, campaign.Options{Workers: 1, Params: p})
	type agg struct {
		row liveBenchRow
		ok  bool
	}
	var order []string
	byTopo := map[string]*agg{}
	for _, tr := range res[0].Trials {
		row, ok := campaign.Value[exp.C5Row](tr)
		if !ok {
			continue
		}
		key := fmt.Sprintf("%s/%d", row.Topology, row.Nodes)
		a := byTopo[key]
		if a == nil {
			a = &agg{row: liveBenchRow{Topology: row.Topology, Nodes: row.Nodes, F: row.F, WithinR: true}}
			byTopo[key] = a
			order = append(order, key)
		}
		a.row.Runs++
		if ms := row.Recovery.Millis(); ms > a.row.WorstRecoverMS {
			a.row.WorstRecoverMS = ms
		}
		a.row.BoundMS = row.Bound.Millis()
		if row.Recovery > row.Bound {
			a.row.WithinR = false
		}
	}
	out := make([]liveBenchRow, 0, len(order))
	for _, key := range order {
		out = append(out, byTopo[key].row)
	}
	return out
}

// measureLiveProc runs the C7 multi-process deployment scenario — one OS
// process per node over real TCP sockets — and copies its per-run rows
// into bundle entries.
func measureLiveProc(p campaign.Params) []liveProcBenchRow {
	res := campaign.Run([]campaign.Scenario{exp.C7Scenario()}, campaign.Options{Workers: 1, Params: p})
	var out []liveProcBenchRow
	for _, tr := range res[0].Trials {
		row, ok := campaign.Value[exp.C7Row](tr)
		if !ok {
			continue
		}
		r := liveProcBenchRow{
			Topology: row.Topology, Nodes: row.Nodes, F: row.F, Fault: row.Fault,
			RecoveryMS: row.Recovery.Millis(), BoundMS: row.Bound.Millis(),
			WithinR: row.Recovery <= row.Bound,
		}
		if row.ReconnectChecked {
			r.Reconnected = &row.Reconnected
		}
		out = append(out, r)
	}
	return out
}

// runExperiment executes experiment id once in quick mode.
func runExperiment(b *testing.B, id string) exp.Result {
	b.Helper()
	for _, e := range exp.All() {
		if e.ID == id {
			return e.Run(uint64(1), true)
		}
	}
	b.Fatalf("unknown experiment %s", id)
	return exp.Result{}
}

// cellMillis parses a "12.345ms"-style cell into milliseconds.
func cellMillis(cell string) (float64, bool) {
	s := strings.TrimSuffix(cell, "ms")
	if s == cell {
		if s2 := strings.TrimSuffix(cell, "s"); s2 != cell {
			v, err := strconv.ParseFloat(s2, 64)
			return v * 1000, err == nil
		}
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// benchCampaign runs the full paper experiment table (quick mode) through
// the campaign runner at the given worker count.
func benchCampaign(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		exp.RunAllWorkers(io.Discard, 1, true, workers)
	}
}

func BenchmarkCampaignSerial(b *testing.B)   { benchCampaign(b, 1) }
func BenchmarkCampaignWorkers4(b *testing.B) { benchCampaign(b, 4) }

// campaignBench is the BENCH_campaign.json schema: the perf trajectory of
// the experiment table through the campaign runner, tracked from PR 1
// onward. Timing fields are machine-dependent; gomaxprocs records the
// parallelism the run actually used and host_cores the machine's core
// count — kept separate so a comparator can refuse to judge timings
// across differently-parallel runs (a 1-core container baseline must not
// gate a multi-core CI run).
type campaignBench struct {
	Schema     string  `json:"schema"`
	Seed       uint64  `json:"seed"`
	Quick      bool    `json:"quick"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	HostCores  int     `json:"host_cores"`
	SerialMS   float64 `json:"serial_wall_ms"`   // workers=1
	Par4MS     float64 `json:"workers4_wall_ms"` // workers=4
	Speedup    float64 `json:"speedup_4w"`

	// PlanCache tracks the incremental plan engine on the largest C2
	// topology (full mesh, 12 nodes, f=2): cold full synthesis
	// (plan.Build) vs. warm cache-backed strategy assembly.
	PlanCache planCacheBench `json:"plan_cache"`

	// Kernel tracks simulation-kernel event throughput on the standard
	// BTR-shaped workload against the frozen pre-refactor closure-heap
	// baseline compiled into the same binary. The speedup ratio is
	// machine-independent (same process, same workload) and gated at
	// >=2x by cmd/btrcheckbench — the typed-kernel acceptance floor.
	Kernel kernelBench `json:"kernel"`

	// Live records the C5 wall-clock soak: full BTR deployments on the
	// real-time executor across topology families, measured recovery vs
	// the provable bound R. within_r is the row-level invariant the
	// comparator gates.
	Live []liveBenchRow `json:"live"`

	// LiveProc records the C7 multi-process deployment soak (schema v6):
	// one OS process per node over real TCP sockets, faults injected
	// against real processes (catalog + SIGKILL-restart + partition),
	// recovery judged by the orchestrator acting as the plant. within_r
	// and reconnected (where non-null) are the invariants btrcheckbench
	// gates; the latencies themselves are wall-clock and machine-bound.
	LiveProc []liveProcBenchRow `json:"liveproc"`

	// Saturation records the throughput fast path (schema v8): the
	// cofactored ed25519 batch-verify speedup over the frozen sequential
	// sweep (same process, same working set — the ratio is
	// machine-independent and gated >=2x at batch >= 16 by
	// cmd/btrcheckbench), plus the C9 saturation probe: per topology,
	// the sustainable flood events/sec the live transport absorbs
	// without material shedding, and a recovery-under-load run at >=80%
	// of that rate whose within_r invariant the comparator gates.
	Saturation saturationBench `json:"saturation"`

	// FaultRate records the C8 high-fault-rate sweep (schema v7):
	// continuous Poisson-style fault arrivals at rate λ against
	// parole-clock deployments, every bad sink-period classified
	// tolerated (within R of a within-budget fault), detected (inside a
	// signed over-budget window) or untolerated (silent miss). All
	// quantities are simulated-time and machine-independent.
	// btrcheckbench gates: the section must be present, every topology's
	// knee must be positive, and every row at or below its topology's
	// knee must have zero untolerated periods and reconcile within the
	// bound.
	FaultRate faultrateBench `json:"faultrate"`

	// MultiFault records the C10 multi-fault family (schema v9): the
	// extended-catalog sweep — corrupt-sink, delay and skip-actuation
	// arrivals drawn by the same Poisson process as C8 against
	// parole-clock deployments — plus the scripted storms: two
	// concurrent process-level faults (> f) against real multi-process
	// deployments, each storm's budget verdicts, confinement and
	// per-victim reconnects. btrcheckbench gates: rows and storms must
	// be present, every topology's knee must be positive, every row at
	// or below its knee must be clean-and-reconciled, and every storm
	// must be flagged, confined and reconnected where checked.
	MultiFault multifaultBench `json:"multifault"`

	// ClientSLO records the C11 client-SLO family (schema v10): a load
	// generator drives concurrent epoch-aware quorum-client sessions
	// (internal/client) against orchestrated multi-process deployments —
	// steady state plus ≤ f process faults landing mid-run — and each row
	// is the client-visible verdict. btrcheckbench gates: the section
	// must be non-empty, every row must have zero client-visible errors
	// (the steady row's error-free p99 in particular), and every row's
	// max unavailability must sit within its recorded bound (R plus one
	// detection period and the watchdog margin). Latencies are wall-clock
	// and machine-bound; the invariants are not.
	ClientSLO []clientsloBenchRow `json:"clientslo"`

	// Churn records the C6 membership-churn family (schema v5): per
	// topology, the epoch count, worst epoch-switch latency vs the worst
	// per-epoch bound R, the within-R / clean-churn invariants, and the
	// cold-vs-warm replan counts of running the same churn script twice
	// against a shared plan cache (warm must be zero — warm churn
	// re-plans nothing). btrcheckbench gates all of it.
	Churn []churnBenchRow `json:"churn"`

	// Crypto tracks the verification/seal memo fast path (schema v4):
	// memoized vs uncached verification ns/op (same process, same
	// working set — the ratio is machine-independent and gated >=2x by
	// cmd/btrcheckbench -min-crypto-speedup), the shared-memo hit rate
	// over the cached serial campaign, and the serial campaign wall
	// measured with the memos disabled vs enabled (the before/after of
	// this subsystem; the ratio is gated >=1.5x). serial_wall_ms above
	// is the cached (production-path) number.
	Crypto cryptoBench `json:"crypto"`

	Scenarios []campaignBenchScenario `json:"scenarios"`
}

type cryptoBench struct {
	VerifyCachedNsOp   float64 `json:"verify_cached_ns_op"`
	VerifyUncachedNsOp float64 `json:"verify_uncached_ns_op"`
	VerifySpeedup      float64 `json:"speedup_verify"`

	MemoHits    uint64  `json:"memo_hits"`
	MemoMisses  uint64  `json:"memo_misses"`
	MemoHitRate float64 `json:"memo_hit_rate"`

	UncachedSerialMS float64 `json:"campaign_serial_uncached_ms"`
	CachedSerialMS   float64 `json:"campaign_serial_cached_ms"`
	CampaignSpeedup  float64 `json:"speedup_campaign"`

	// E4WorkShare is the crypto-bound scenario's share of total serial
	// compute — the canary btrcheckbench regression-gates.
	E4WorkShare float64 `json:"e4_work_share"`
}

// saturationBench is the v8 saturation section: batch-verify ratios at
// the ingest batch sizes plus the C9 probe rows.
type saturationBench struct {
	BatchVerify []batchVerifyBench   `json:"batch_verify"`
	Rows        []saturationBenchRow `json:"rows"`
}

type batchVerifyBench struct {
	BatchSize      int     `json:"batch_size"`
	BatchNsOp      float64 `json:"batch_ns_op"`
	SequentialNsOp float64 `json:"sequential_ns_op"`
	Speedup        float64 `json:"speedup"`
}

type saturationBenchRow struct {
	Topology       string  `json:"topology"`
	Nodes          int     `json:"nodes"`
	F              int     `json:"f"`
	SustainableEPS float64 `json:"sustainable_eps"`
	LoadEPS        float64 `json:"load_eps"`
	LoadFraction   float64 `json:"load_fraction"`
	RecoveryMS     float64 `json:"recovery_ms"`
	BoundMS        float64 `json:"bound_ms"`
	WithinR        bool    `json:"within_r"`
	Delivered      uint64  `json:"delivered"`
	Dropped        uint64  `json:"dropped"`
	Shed           uint64  `json:"shed"`
}

// measureSaturation records the batch-verify ratios at the two ingest
// batch shapes (the gate floor applies at >=16; 64 is the flood-ingest
// coalescing size) and runs the full C9 probe per topology.
func measureSaturation(t *testing.T) saturationBench {
	var out saturationBench
	for _, batch := range []int{16, 64} {
		batchNs, seqNs := sig.MeasureBatchSpeedup(batch)
		out.BatchVerify = append(out.BatchVerify, batchVerifyBench{
			BatchSize:      batch,
			BatchNsOp:      batchNs,
			SequentialNsOp: seqNs,
			Speedup:        seqNs / batchNs,
		})
	}
	for _, kind := range exp.SaturationKinds() {
		row, err := exp.RunSaturationBench(kind, 1)
		if err != nil {
			t.Fatalf("saturation bench %s: %v", kind, err)
		}
		out.Rows = append(out.Rows, saturationBenchRow{
			Topology:       row.Topology,
			Nodes:          row.Nodes,
			F:              row.F,
			SustainableEPS: row.SustainableEPS,
			LoadEPS:        row.LoadEPS,
			LoadFraction:   row.LoadFraction,
			RecoveryMS:     row.Recovery.Millis(),
			BoundMS:        row.Bound.Millis(),
			WithinR:        row.WithinR,
			Delivered:      row.Delivered,
			Dropped:        row.Dropped,
			Shed:           row.Shed,
		})
	}
	return out
}

type kernelBench struct {
	EventsPerSec       float64 `json:"events_per_sec"`
	LegacyEventsPerSec float64 `json:"legacy_events_per_sec"`
	Speedup            float64 `json:"speedup"`
}

// faultrateBench is the C8 section: the full (topology × λ) sweep plus
// the graceful-degradation knee per topology.
type faultrateBench struct {
	Rows  []faultrateBenchRow `json:"rows"`
	Knees []faultrateKnee     `json:"knees"`
}

type faultrateBenchRow struct {
	Topology      string  `json:"topology"`
	LambdaPerSec  float64 `json:"lambda_per_sec"`
	Arrivals      int     `json:"arrivals"`
	Tolerated     int     `json:"tolerated"`
	Detected      int     `json:"detected"`
	Untolerated   int     `json:"untolerated"`
	Windows       int     `json:"windows"`
	WorstWindowMS float64 `json:"worst_window_ms"`
	BoundWindowMS float64 `json:"bound_window_ms"`
	Reconciled    bool    `json:"reconciled"`
}

type faultrateKnee struct {
	Topology         string  `json:"topology"`
	KneeLambdaPerSec float64 `json:"knee_lambda_per_sec"`
}

// multifaultBench is the C10 section: the extended-catalog (topology ×
// λ) sweep with its knees, plus the concurrent-fault storm verdicts.
type multifaultBench struct {
	Rows   []faultrateBenchRow  `json:"rows"`
	Knees  []faultrateKnee      `json:"knees"`
	Storms []multifaultStormRow `json:"storms"`
}

type multifaultStormRow struct {
	Name             string `json:"name"`
	Topology         string `json:"topology"`
	Nodes            int    `json:"nodes"`
	F                int    `json:"f"`
	Faults           string `json:"faults"`
	OverBudget       int    `json:"over_budget"`
	Reconciled       int    `json:"reconciled"`
	Flagged          bool   `json:"flagged"`
	Confined         bool   `json:"confined"`
	ReconnectChecked bool   `json:"reconnect_checked"`
	Reconnected      bool   `json:"reconnected"`
}

// measureMultiFault runs the full C10 sweep — every topology at every
// swept λ with the extended catalog, full horizon — plus every scripted
// storm against real processes.
func measureMultiFault(t *testing.T) multifaultBench {
	var out multifaultBench
	for _, kind := range exp.MultiFaultKinds() {
		var rows []exp.C8Row
		for _, lambda := range exp.MultiFaultLambdas() {
			row, err := exp.RunMultiFaultBench(kind, lambda, 1)
			if err != nil {
				t.Fatalf("multifault bench %s λ=%g: %v", kind, lambda, err)
			}
			rows = append(rows, row)
			out.Rows = append(out.Rows, faultrateBenchRow{
				Topology:      row.Topology,
				LambdaPerSec:  row.Lambda,
				Arrivals:      row.Arrivals,
				Tolerated:     row.Tolerated,
				Detected:      row.Detected,
				Untolerated:   row.Untolerated,
				Windows:       row.Windows,
				WorstWindowMS: row.WorstWindow.Millis(),
				BoundWindowMS: row.Bound.Millis(),
				Reconciled:    row.Reconciled,
			})
		}
		out.Knees = append(out.Knees, faultrateKnee{
			Topology:         kind,
			KneeLambdaPerSec: exp.C8Knee(rows),
		})
	}
	for _, name := range exp.MultiFaultStorms() {
		row, err := exp.RunMultiFaultStormBench(name, 1)
		if err != nil {
			t.Fatalf("multifault storm bench %s: %v", name, err)
		}
		out.Storms = append(out.Storms, multifaultStormRow{
			Name:             row.Name,
			Topology:         row.Topology,
			Nodes:            row.Nodes,
			F:                row.F,
			Faults:           row.Faults,
			OverBudget:       row.OverBudget,
			Reconciled:       row.Reconciled,
			Flagged:          row.Flagged,
			Confined:         row.Confined,
			ReconnectChecked: row.ReconnectChecked,
			Reconnected:      row.Reconnected,
		})
	}
	return out
}

// clientsloBenchRow is one C11 run: the client-visible SLO a load of
// quorum-client sessions measured through an orchestrated deployment.
type clientsloBenchRow struct {
	Name         string  `json:"name"`
	Topology     string  `json:"topology"`
	Nodes        int     `json:"nodes"`
	F            int     `json:"f"`
	Fault        string  `json:"fault"`
	Sessions     int     `json:"sessions"`
	Ops          uint64  `json:"ops"`
	Errors       uint64  `json:"errors"`
	Retries      uint64  `json:"retries"`
	StaleRetries uint64  `json:"stale_retries"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	P999MS       float64 `json:"p999_ms"`
	MaxUnavailMS float64 `json:"max_unavail_ms"`
	BoundMS      float64 `json:"bound_ms"`
	Within       bool    `json:"within"`
}

// measureClientSLO runs every C11 case — steady state plus each ≤ f
// process fault — against real multi-process deployments with client
// load attached.
func measureClientSLO(t *testing.T) []clientsloBenchRow {
	var out []clientsloBenchRow
	for _, name := range exp.ClientSLOCases() {
		row, err := exp.RunClientSLOBench(name, 1)
		if err != nil {
			t.Fatalf("clientslo bench %s: %v", name, err)
		}
		out = append(out, clientsloBenchRow{
			Name:         row.Name,
			Topology:     row.Topology,
			Nodes:        row.Nodes,
			F:            row.F,
			Fault:        row.Fault,
			Sessions:     row.Sessions,
			Ops:          row.Ops,
			Errors:       row.Errors,
			Retries:      row.Retries,
			StaleRetries: row.StaleRetries,
			P50MS:        float64(row.P50.Microseconds()) / 1000,
			P99MS:        float64(row.P99.Microseconds()) / 1000,
			P999MS:       float64(row.P999.Microseconds()) / 1000,
			MaxUnavailMS: float64(row.MaxUnavail.Microseconds()) / 1000,
			BoundMS:      float64(row.Bound.Microseconds()) / 1000,
			Within:       row.Within,
		})
	}
	return out
}

// measureFaultRate runs the full C8 sweep — every topology at every
// swept λ, full horizon — and records the per-row classification plus
// the knee each topology sustains.
func measureFaultRate(t *testing.T) faultrateBench {
	var out faultrateBench
	for _, kind := range exp.FaultRateKinds() {
		var rows []exp.C8Row
		for _, lambda := range exp.FaultRateLambdas() {
			row, err := exp.RunFaultRateBench(kind, lambda, 1)
			if err != nil {
				t.Fatalf("faultrate bench %s λ=%g: %v", kind, lambda, err)
			}
			rows = append(rows, row)
			out.Rows = append(out.Rows, faultrateBenchRow{
				Topology:      row.Topology,
				LambdaPerSec:  row.Lambda,
				Arrivals:      row.Arrivals,
				Tolerated:     row.Tolerated,
				Detected:      row.Detected,
				Untolerated:   row.Untolerated,
				Windows:       row.Windows,
				WorstWindowMS: row.WorstWindow.Millis(),
				BoundWindowMS: row.Bound.Millis(),
				Reconciled:    row.Reconciled,
			})
		}
		out.Knees = append(out.Knees, faultrateKnee{
			Topology:         kind,
			KneeLambdaPerSec: exp.C8Knee(rows),
		})
	}
	return out
}

type churnBenchRow struct {
	Topology      string  `json:"topology"`
	Epochs        int     `json:"epochs"`
	WorstSwitchMS float64 `json:"worst_switch_ms"`
	BoundMS       float64 `json:"bound_r_ms"`
	WithinR       bool    `json:"within_r"`
	CleanChurn    bool    `json:"clean_churn"`
	ColdReplans   uint64  `json:"cold_replans"`
	WarmReplans   uint64  `json:"warm_replans"`
}

// measureChurn runs every C6 churn topology twice against a shared plan
// cache: the first pass measures cold replans, the second proves warm
// churn synthesizes nothing while reproducing identical epochs.
func measureChurn(t *testing.T) []churnBenchRow {
	var rows []churnBenchRow
	for _, kind := range exp.ChurnKinds() {
		shared := cache.New()
		cold, err := exp.RunChurnBench(kind, 1, shared)
		if err != nil {
			t.Fatalf("churn bench %s (cold): %v", kind, err)
		}
		warm, err := exp.RunChurnBench(kind, 1, shared)
		if err != nil {
			t.Fatalf("churn bench %s (warm): %v", kind, err)
		}
		rows = append(rows, churnBenchRow{
			Topology:      kind,
			Epochs:        warm.Epochs,
			WorstSwitchMS: warm.WorstSwitch.Millis(),
			BoundMS:       warm.WorstBound.Millis(),
			WithinR:       warm.WithinR,
			CleanChurn:    warm.CleanChurn,
			ColdReplans:   cold.Replans,
			WarmReplans:   warm.Replans,
		})
	}
	return rows
}

type liveBenchRow struct {
	Topology       string  `json:"topology"`
	Nodes          int     `json:"nodes"`
	F              int     `json:"f"`
	Runs           int     `json:"runs"`
	WorstRecoverMS float64 `json:"worst_recovery_ms"`
	BoundMS        float64 `json:"bound_r_ms"`
	WithinR        bool    `json:"within_r"`
}

type liveProcBenchRow struct {
	Topology   string  `json:"topology"`
	Nodes      int     `json:"nodes"`
	F          int     `json:"f"`
	Fault      string  `json:"fault"`
	RecoveryMS float64 `json:"recovery_ms"`
	BoundMS    float64 `json:"bound_r_ms"`
	WithinR    bool    `json:"within_r"`
	// Reconnected is non-null only for faults whose repair must be
	// visible at the transport (kill-restart, partition).
	Reconnected *bool `json:"reconnected"`
}

type planCacheBench struct {
	Topology    string  `json:"topology"`
	FaultSets   int     `json:"fault_sets"`
	Orbits      uint64  `json:"orbits"` // cold syntheses (one per orbit)
	ColdMS      float64 `json:"cold_full_synthesis_ms"`
	WarmMS      float64 `json:"warm_cache_ms"`
	Speedup     float64 `json:"speedup_warm"`
	SymHits     uint64  `json:"symmetry_hits"`
	DeltaBuilds uint64  `json:"delta_builds"`
}

type campaignBenchScenario struct {
	ID     string  `json:"id"`
	Trials int     `json:"trials"`
	Failed int     `json:"failed"`
	WorkMS float64 `json:"work_ms"` // summed trial compute (serial run)
}

// TestEmitCampaignBench writes BENCH_campaign.json when BTR_BENCH_OUT is
// set (wired to `make bench-json`); it is skipped in normal test runs.
func TestEmitCampaignBench(t *testing.T) {
	out := os.Getenv("BTR_BENCH_OUT")
	if out == "" {
		t.Skip("set BTR_BENCH_OUT=<path> to emit the campaign benchmark bundle")
	}
	quick := os.Getenv("BTR_BENCH_QUICK") != ""
	scens := exp.PaperScenarios()
	p := campaign.Params{Seed: 1, Quick: quick}

	// Crypto before/after: the same serial campaign with the sig memos
	// disabled, then enabled. Registries capture the setting at
	// construction, so the toggle cleanly splits the two runs. The table
	// comparison below doubles as a determinism assertion: memoization
	// must not change a single output byte.
	renderTables := func(rs []campaign.ScenarioResult) string {
		var sb strings.Builder
		for _, r := range rs {
			for _, tbl := range r.Tables {
				sb.WriteString(tbl.String())
			}
		}
		return sb.String()
	}
	sig.SetMemos(false)
	start := time.Now()
	uncachedRes := campaign.Run(scens, campaign.Options{Workers: 1, Params: p})
	uncachedSerial := time.Since(start)
	sig.SetMemos(true)

	// Both timed runs start with empty memos: serial measures the
	// cold-start production path (intra-run sharing only), and the
	// workers=4 run must not inherit the serial run's warmth — otherwise
	// speedup_4w would conflate cache reuse with parallelism.
	sig.ResetMemos()
	vh0, vm0, sh0, sm0 := sig.MemoStats()
	start = time.Now()
	serialRes := campaign.Run(scens, campaign.Options{Workers: 1, Params: p})
	serial := time.Since(start)
	vh1, vm1, sh1, sm1 := sig.MemoStats()
	hits := (vh1 - vh0) + (sh1 - sh0)
	misses := (vm1 - vm0) + (sm1 - sm0)

	if renderTables(uncachedRes) != renderTables(serialRes) {
		t.Fatal("memoized serial campaign tables differ from the uncached run")
	}

	sig.ResetMemos()
	start = time.Now()
	campaign.Run(scens, campaign.Options{Workers: 4, Params: p})
	par4 := time.Since(start)

	cachedNs, uncachedNs := sig.MeasureVerifySpeedup(64)
	curTP, legacyTP := sim.MeasureKernelThroughput(1 << 19)
	bench := campaignBench{
		Schema: "btr-campaign-bench/v10",
		Seed:   1, Quick: quick,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		HostCores:  runtime.NumCPU(),
		SerialMS:   float64(serial.Microseconds()) / 1000,
		Par4MS:     float64(par4.Microseconds()) / 1000,
		Speedup:    float64(serial) / float64(par4),
		PlanCache:  measurePlanCache(t),
		Kernel: kernelBench{
			EventsPerSec:       curTP,
			LegacyEventsPerSec: legacyTP,
			Speedup:            curTP / legacyTP,
		},
		Live:       measureLiveSoak(p),
		LiveProc:   measureLiveProc(p),
		Churn:      measureChurn(t),
		FaultRate:  measureFaultRate(t),
		Saturation: measureSaturation(t),
		MultiFault: measureMultiFault(t),
		ClientSLO:  measureClientSLO(t),
		Crypto: cryptoBench{
			VerifyCachedNsOp:   cachedNs,
			VerifyUncachedNsOp: uncachedNs,
			VerifySpeedup:      uncachedNs / cachedNs,
			MemoHits:           hits,
			MemoMisses:         misses,
			MemoHitRate:        float64(hits) / float64(hits+misses),
			UncachedSerialMS:   float64(uncachedSerial.Microseconds()) / 1000,
			CachedSerialMS:     float64(serial.Microseconds()) / 1000,
			CampaignSpeedup:    float64(uncachedSerial) / float64(serial),
		},
	}
	for _, r := range serialRes {
		bench.Scenarios = append(bench.Scenarios, campaignBenchScenario{
			ID: r.ID, Trials: len(r.Trials), Failed: r.Failed,
			WorkMS: float64(r.Work.Microseconds()) / 1000,
		})
	}
	// The C4 plan-cache, C6 churn and C8 fault-rate sweeps ride along
	// outside the timed serial/par4 pair so the historical wall-clock
	// trajectory stays comparable.
	for _, sc := range exp.Scenarios() {
		if sc.ID != "C4" && sc.ID != "C6" && sc.ID != "C8" {
			continue
		}
		res := campaign.Run([]campaign.Scenario{sc}, campaign.Options{Workers: 1, Params: p})
		bench.Scenarios = append(bench.Scenarios, campaignBenchScenario{
			ID: res[0].ID, Trials: len(res[0].Trials), Failed: res[0].Failed,
			WorkMS: float64(res[0].Work.Microseconds()) / 1000,
		})
	}
	// E4's recorded share uses the same denominator the btrcheckbench
	// canary gate does: every scenario row in the bundle, C4 included.
	var totalMS float64
	for _, sc := range bench.Scenarios {
		totalMS += sc.WorkMS
	}
	for _, sc := range bench.Scenarios {
		if sc.ID == "E4" && totalMS > 0 {
			bench.Crypto.E4WorkShare = sc.WorkMS / totalMS
		}
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatalf("create %s: %v", out, err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bench); err != nil {
		t.Fatalf("encode: %v", err)
	}
	t.Logf("wrote %s: serial %.0fms (uncached %.0fms, crypto %.2fx, memo hit rate %.1f%%), workers=4 %.0fms, speedup %.2fx (GOMAXPROCS=%d, %d host core(s)); plan cache warm %.2fms vs cold %.2fms (%.1fx); kernel %.2fx vs legacy; verify memo %.1fx; batch verify %.2fx@%d; %d live soak row(s); %d multi-process row(s); %d churn row(s); %d fault-rate row(s) across %d knee(s); %d saturation row(s); %d multifault row(s) + %d storm(s); %d clientslo row(s)",
		out, bench.SerialMS, bench.Crypto.UncachedSerialMS, bench.Crypto.CampaignSpeedup,
		bench.Crypto.MemoHitRate*100, bench.Par4MS, bench.Speedup, bench.GOMAXPROCS, bench.HostCores,
		bench.PlanCache.WarmMS, bench.PlanCache.ColdMS, bench.PlanCache.Speedup,
		bench.Kernel.Speedup, bench.Crypto.VerifySpeedup,
		bench.Saturation.BatchVerify[0].Speedup, bench.Saturation.BatchVerify[0].BatchSize,
		len(bench.Live), len(bench.LiveProc), len(bench.Churn),
		len(bench.FaultRate.Rows), len(bench.FaultRate.Knees), len(bench.Saturation.Rows),
		len(bench.MultiFault.Rows), len(bench.MultiFault.Storms), len(bench.ClientSLO))
}

func BenchmarkE1Recovery(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, "E1")
		worst = 0
		for _, row := range res.Tables[0].Rows {
			if v, ok := cellMillis(row[3]); ok && v > worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "worst-recovery-ms")
}

func BenchmarkE2ReplicaCost(b *testing.B) {
	var btrUtil float64
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, "E2")
		for _, row := range res.Tables[0].Rows {
			if row[0] == "1" && row[1] == "BTR" {
				if v, err := strconv.ParseFloat(row[3], 64); err == nil {
					btrUtil = v
				}
			}
		}
	}
	b.ReportMetric(btrUtil, "btr-peak-util")
}

func BenchmarkE3ClockFrequency(b *testing.B) {
	var bftSpeed float64
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, "E3")
		for _, row := range res.Tables[0].Rows {
			if row[1] == "BFT(3f+1)" {
				if v, err := strconv.ParseFloat(row[2], 64); err == nil {
					bftSpeed = v
				}
			}
		}
	}
	b.ReportMetric(bftSpeed, "bft-min-speed")
}

func BenchmarkE4Staggered(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, "E4")
		rows := res.Tables[0].Rows
		if v, ok := cellMillis(rows[len(rows)-1][1]); ok {
			total = v
		}
	}
	b.ReportMetric(total, "kmax-bad-output-ms")
}

func BenchmarkE5MixedCriticality(b *testing.B) {
	var shed float64
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, "E5")
		rows := res.Tables[0].Rows
		last := rows[len(rows)-1]
		shed = float64(len(strings.Fields(last[2])))
	}
	b.ReportMetric(shed, "sinks-shed-at-fmax")
}

func BenchmarkE6EvidenceDoS(b *testing.B) {
	var conv float64
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, "E6")
		for _, row := range res.Tables[0].Rows {
			// Reserved share, highest flood rate row.
			if row[1] == "0.20" {
				if v, ok := cellMillis(row[2]); ok {
					conv = v
				}
			}
		}
	}
	b.ReportMetric(conv, "flooded-convergence-ms")
}

func BenchmarkE7Planner(b *testing.B) {
	var plans float64
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, "E7")
		rows := res.Tables[0].Rows
		if v, err := strconv.ParseFloat(rows[len(rows)-1][3], 64); err == nil {
			plans = v
		}
	}
	b.ReportMetric(plans, "plans-at-largest-config")
}

func BenchmarkE8ModeChange(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, "E8")
		for _, row := range res.Tables[0].Rows {
			if v, ok := cellMillis(row[4]); ok && v > total {
				total = v
			}
		}
	}
	b.ReportMetric(total, "worst-total-recovery-ms")
}

func BenchmarkE9FiveSecondRule(b *testing.B) {
	var violations float64
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, "E9")
		for _, row := range res.Tables[1].Rows {
			if row[0] == "envelope violations" {
				if v, err := strconv.ParseFloat(row[1], 64); err == nil {
					violations = v
				}
			}
		}
	}
	b.ReportMetric(violations, "envelope-violations")
}

func BenchmarkE10Baselines(b *testing.B) {
	var btrMax float64
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, "E10")
		for _, row := range res.Tables[0].Rows {
			if strings.HasPrefix(row[0], "BTR") {
				if v, ok := cellMillis(row[3]); ok {
					btrMax = v
				}
			}
		}
	}
	b.ReportMetric(btrMax, "btr-max-recovery-ms")
}
