# BTR reproduction — build / test / benchmark entry points.
#
# `make ci` is the gate every PR must pass (and exactly what
# .github/workflows/ci.yml runs): gofmt diff check, vet, build, and the
# full test suite under the race detector. `make bench-json` regenerates
# BENCH_campaign.json, the tracked perf trajectory of the experiment
# table and the plan cache; `make bench-check` regenerates it to a
# scratch file and gates against the committed baseline via
# cmd/btrcheckbench.

GO ?= go
FUZZTIME ?= 30s
# Minimum total statement coverage `make cover` enforces.
COVER_MIN ?= 75

.PHONY: all build test vet fmt fmt-check race ci cover docs-check bench bench-json bench-new bench-check fuzz campaign smoke-proc smoke-client clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Non-mutating gofmt gate: lists offending files and fails.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Mutating counterpart: rewrite files in place.
fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the wire codecs (the seed corpora always run as
# part of `go test`; this digs further): the evidence record codec, the
# membership epoch-record codec, and the client request/response (Q)
# frame codec. Override the budget with `make fuzz FUZZTIME=10s` (CI
# does).
fuzz:
	$(GO) test ./internal/evidence -fuzz=FuzzRecordRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/member -fuzz=FuzzEpochRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -fuzz=FuzzQFrameRoundTrip -fuzztime=$(FUZZTIME)

# Coverage profile over the whole module plus a threshold gate: total
# statement coverage must stay at or above COVER_MIN.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./internal/... ./cmd/... .
	@$(GO) tool cover -func=cover.out | awk '/^total:/ { pct = $$3; sub("%","",pct); \
		if (pct+0 < $(COVER_MIN)) { printf "coverage %s%% below the $(COVER_MIN)%% floor\n", pct; exit 1 } \
		else printf "coverage %s%% (floor $(COVER_MIN)%%)\n", pct }'

# Docs gate: the FAULT_MODEL.md matrix must cover the full behavior
# catalog with citations resolving to real tests/bench gates, and every
# relative link/anchor in the markdown docs must resolve.
docs-check:
	$(GO) run ./cmd/btrfaultmodel -check
	$(GO) run ./cmd/btrfaultmodel -links README.md ROADMAP.md FAULT_MODEL.md BENCH_SCHEMA.md

# One-iteration benchmark smoke: every experiment benchmark, the campaign
# serial/parallel pair, the plan-cache cold/warm/delta benchmarks, the
# kernel-throughput pair (current vs frozen legacy baseline), the
# verify/seal memo pairs (plus batch-vs-sequential verify), the
# evidence-flood encode-once/legacy pair, the wire batch-frame codec, and
# the transport coalescing/shedding paths.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x . ./internal/sim ./internal/sig ./internal/evidence ./internal/network ./internal/wire

# Regenerate the tracked campaign perf bundle (full, non-quick sweep).
bench-json:
	BTR_BENCH_OUT=$(CURDIR)/BENCH_campaign.json $(GO) test -run TestEmitCampaignBench -v .

# Generate a fresh bundle without touching the committed baseline.
bench-new:
	BTR_BENCH_OUT=$(CURDIR)/BENCH_new.json $(GO) test -run TestEmitCampaignBench -v .

# Gate: fresh bundle vs committed baseline. Machine-independent checks
# (work shares, warm-speedup floor, failed trials) always run; add
# `-wall` via BENCHFLAGS for same-host absolute wall-clock gating:
#   make bench-check BENCHFLAGS=-wall
bench-check: bench-new
	$(GO) run ./cmd/btrcheckbench -baseline BENCH_campaign.json -new BENCH_new.json -tolerance 0.20 $(BENCHFLAGS)

# Full campaign, all scenario families, JSON bundle to stdout.
campaign:
	$(GO) run ./cmd/btrcampaign -json

# Multi-process deployment smoke: one OS process per node over real TCP
# sockets, SIGKILL the victim mid-run, respawn it, and require recovery
# within the provable bound plus transport-level rejoin; then a
# concurrent > f storm (SIGSTOP one node while partitioning another,
# parole clock on) that must be flagged, confined, and reconnected.
# The period and margin are the proven single-core constants (see
# internal/live); the timeout bounds a wedged orchestrator, not a slow
# one (a clean run is ~7s of wall clock per leg).
smoke-proc:
	timeout 120 $(GO) run ./cmd/btrlive -orchestrate -nodes 4 -f 1 \
		-period 500ms -margin 200ms -horizon 10 -at 3 -seed 7 -fault kill-restart
	timeout 120 $(GO) run ./cmd/btrlive -orchestrate -nodes 4 -f 1 \
		-period 500ms -margin 200ms -horizon 16 -seed 7 \
		-faults stop@3+3,partition@5+3 -forgive 1s

# Serving-surface smoke: the same orchestrated deployment with client
# sessions attached — epoch-aware quorum reads/writes riding through a
# SIGKILL-and-restart. The exit code carries the client-visible SLO
# verdict (zero errors, unavailability within R plus detection slack)
# on top of the plant's within-R verdict.
smoke-client:
	timeout 180 $(GO) run ./cmd/btrlive -orchestrate -nodes 4 -f 1 \
		-period 500ms -margin 200ms -horizon 10 -at 3 -seed 7 \
		-fault kill-restart -clients 8 -ops 200

ci: fmt-check vet build race
	@echo "ci: OK"

clean:
	$(GO) clean ./...
	rm -f BENCH_new.json cover.out
