# BTR reproduction — build / test / benchmark entry points.
#
# `make ci` is the gate every PR must pass: vet, build, the full test
# suite under the race detector, and a one-iteration benchmark smoke of
# the campaign runner. `make bench-json` regenerates BENCH_campaign.json,
# the tracked perf trajectory of the experiment table.

GO ?= go

.PHONY: all build test vet fmt race ci bench bench-json fuzz campaign clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the evidence codec (the seed corpus always runs as
# part of `go test`; this digs further).
fuzz:
	$(GO) test ./internal/evidence -fuzz=FuzzRecordRoundTrip -fuzztime=30s

# One-iteration benchmark smoke: every experiment benchmark plus the
# campaign serial/parallel pair, without -benchtime noise.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

# Regenerate the tracked campaign perf bundle (full, non-quick sweep).
bench-json:
	BTR_BENCH_OUT=$(CURDIR)/BENCH_campaign.json $(GO) test -run TestEmitCampaignBench -v .

# Full campaign, all scenario families, JSON bundle to stdout.
campaign:
	$(GO) run ./cmd/btrcampaign -json

ci: fmt vet build race bench
	@echo "ci: OK"

clean:
	$(GO) clean ./...
